//! Device fleets and heterogeneity levels.
//!
//! The paper samples each client's capability tier uniformly from a tier set
//! that depends on the system-heterogeneity level (Figures 7-8): *low* uses
//! `{1, 1/2}`, *median* `{1, 1/2, 1/4}` and *high* the full
//! `{1, 1/2, 1/4, 1/8, 1/16}`. During training the locally *available*
//! capability can additionally fluctuate because devices run other workloads;
//! the fleet models this with a per-round availability factor.
//!
//! # Population scale: dense vs. lazy fleets
//!
//! A fleet has two physical representations behind one API:
//!
//! * [`DeviceFleet::sample`] pre-builds every [`DeviceProfile`] in a `Vec` —
//!   the historical representation, right for federations of tens to
//!   thousands of clients;
//! * [`DeviceFleet::lazy`] registers a population of any size in `O(1)`
//!   memory. A client's profile is a pure seeded function of its client-id,
//!   materialized on first access and memoized sparsely, so resident memory
//!   stays `O(clients actually touched)` even at millions of registered
//!   devices — the cross-device regime of Oort (OSDI '21) / REFL
//!   (EuroSys '23).
//!
//! The two representations are **bit-identical** at equal `(size, level,
//! seed)`: the lazy fleet replays the exact tier-draw RNG stream of the dense
//! constructor from cloned checkpoints (see `CHECKPOINT_STRIDE`), rejection
//! sampling included, which a proptest regression pins for every
//! heterogeneity level. Per-round availability and churn were already pure
//! per-id functions and behave identically in both representations.
//!
//! ```
//! use fedlps_device::fleet::DeviceFleet;
//! use fedlps_device::HeterogeneityLevel;
//!
//! let dense = DeviceFleet::sample(1000, HeterogeneityLevel::High, 7);
//! let lazy = DeviceFleet::lazy(1000, HeterogeneityLevel::High, 7);
//! assert_eq!(dense.static_profile(643), lazy.static_profile(643));
//! assert_eq!(lazy.materialized_profiles(), 1); // only client 643 is resident
//! ```

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use fedlps_tensor::{rng_from_seed, split_seed};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::capability::{CapabilityTier, DeviceProfile};

/// The three system-heterogeneity levels swept in Figures 7-8, plus the
/// homogeneous control setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeterogeneityLevel {
    /// All devices are top tier (no system heterogeneity).
    None,
    /// Tiers sampled from `{1, 1/2}`.
    Low,
    /// Tiers sampled from `{1, 1/2, 1/4}`.
    Median,
    /// Tiers sampled from `{1, 1/2, 1/4, 1/8, 1/16}` — the paper's default.
    High,
}

impl HeterogeneityLevel {
    /// The tier pool associated with the level.
    pub fn tiers(&self) -> Vec<CapabilityTier> {
        match self {
            HeterogeneityLevel::None => vec![CapabilityTier::Full],
            HeterogeneityLevel::Low => vec![CapabilityTier::Full, CapabilityTier::Half],
            HeterogeneityLevel::Median => vec![
                CapabilityTier::Full,
                CapabilityTier::Half,
                CapabilityTier::Quarter,
            ],
            HeterogeneityLevel::High => CapabilityTier::all().to_vec(),
        }
    }

    /// Level name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            HeterogeneityLevel::None => "none",
            HeterogeneityLevel::Low => "low",
            HeterogeneityLevel::Median => "median",
            HeterogeneityLevel::High => "high",
        }
    }

    /// The three levels compared in Figures 7-8.
    pub fn swept() -> [HeterogeneityLevel; 3] {
        [
            HeterogeneityLevel::Low,
            HeterogeneityLevel::Median,
            HeterogeneityLevel::High,
        ]
    }
}

/// Configuration of per-round availability dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicsConfig {
    /// Whether availability fluctuates at all.
    pub enabled: bool,
    /// Minimum availability factor (1.0 = full capability available).
    pub min_availability: f64,
    /// Probability that a participating device churns offline mid-round and
    /// its update is lost. Only the event-driven round modes observe this
    /// (a synchronous server waits for the device to come back); 0 disables
    /// churn entirely.
    pub offline_prob: f64,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            min_availability: 0.5,
            offline_prob: 0.0,
        }
    }
}

impl DynamicsConfig {
    /// Builder-style override of the mid-round offline-churn probability.
    /// Range errors surface through [`validate`](DynamicsConfig::validate)
    /// (run once by the simulator's entry point), not here — builders stay
    /// infallible so configs can be assembled in any order.
    pub fn with_offline_prob(mut self, prob: f64) -> Self {
        self.offline_prob = prob;
        self
    }

    /// Checks the knobs, returning an actionable message on the first bad
    /// one. `offline_prob` must stay strictly below 1: certain churn would
    /// mean no update ever completes, which starves the async pipeline
    /// (every slot refills forever and no aggregation can happen).
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.offline_prob) {
            return Err(format!(
                "offline_prob must be in [0, 1) — certain churn starves the \
                 async pipeline — got {}",
                self.offline_prob
            ));
        }
        if !(0.0..=1.0).contains(&self.min_availability) {
            return Err(format!(
                "min_availability must be in [0, 1], got {}",
                self.min_availability
            ));
        }
        Ok(())
    }
}

/// Distance (in device indices) between cloned RNG checkpoints of the lazy
/// tier stream. First access to an index region replays at most this many
/// tier draws; checkpoint storage is `O(highest touched index / stride)` —
/// a few hundred cloned RNG states even at a million registered devices.
const CHECKPOINT_STRIDE: usize = 4096;

/// Draws one tier exactly as [`DeviceFleet::sample`] does — the shared
/// primitive that keeps the dense constructor and the lazy replay
/// bit-identical (including the rejection-sampling behaviour of
/// `gen_range` on non-power-of-two tier pools).
fn draw_tier(tiers: &[CapabilityTier], rng: &mut StdRng) -> CapabilityTier {
    tiers[rng.gen_range(0..tiers.len())]
}

/// RNG stream of the client → zone-aggregator assignment of a two-tier
/// topology (disjoint from the tier/availability/churn streams above).
const STREAM_ZONE: u64 = 0x20E5A5;

/// Seeded zone assignment of a hierarchical (two-tier) topology: which of
/// the `zones` edge aggregators client `client` uploads through. A pure
/// `O(1)` function of `(seed, client)` — like churn and availability, it
/// never materializes a per-population vector, so registered-population
/// scale is preserved.
pub fn zone_assignment(seed: u64, client: usize, zones: usize) -> usize {
    assert!(zones >= 1, "a two-tier topology needs at least one zone");
    let mut rng = rng_from_seed(split_seed(split_seed(seed, STREAM_ZONE), client as u64));
    rng.gen_range(0..zones)
}

/// The lazily evaluated tier stream backing [`DeviceFleet::lazy`].
///
/// Conceptually this *is* the `(0..num_devices)` tier-draw loop of
/// [`DeviceFleet::sample`], evaluated on demand: `profile(k)` replays the
/// draw stream from the nearest checkpoint at or below `k`, memoizes the
/// requested profile in a sparse `BTreeMap` (lint rule D1) and clones an RNG
/// checkpoint every [`CHECKPOINT_STRIDE`] indices so later accesses in the
/// same region are cheap. Shared behind an `Arc` so fleet clones see one
/// cache; the interior `Mutex` only guards memoization — results are a pure
/// function of `(seed, k)`, so the lock order can never influence a value.
struct LazyTiers {
    num_devices: usize,
    tiers: Vec<CapabilityTier>,
    /// The tier stream seed: `split_seed(fleet seed, 0xDE71CE)`.
    stream_seed: u64,
    state: Mutex<LazyTiersState>,
}

struct LazyTiersState {
    /// `checkpoints[i]` is the RNG positioned to draw device `i * STRIDE`.
    checkpoints: Vec<StdRng>,
    /// Profiles materialized so far, keyed by device id.
    profiles: BTreeMap<usize, DeviceProfile>,
}

impl LazyTiers {
    fn new(num_devices: usize, tiers: Vec<CapabilityTier>, stream_seed: u64) -> Self {
        Self {
            num_devices,
            tiers,
            stream_seed,
            state: Mutex::new(LazyTiersState {
                checkpoints: vec![rng_from_seed(stream_seed)],
                profiles: BTreeMap::new(),
            }),
        }
    }

    fn profile(&self, k: usize) -> DeviceProfile {
        assert!(k < self.num_devices, "device {k} out of range");
        let mut state = self.state.lock().expect("lazy fleet lock");
        if let Some(p) = state.profiles.get(&k) {
            return *p;
        }
        let ci = k / CHECKPOINT_STRIDE;
        while state.checkpoints.len() <= ci {
            let mut rng = state.checkpoints.last().expect("seed checkpoint").clone();
            for _ in 0..CHECKPOINT_STRIDE {
                let _ = draw_tier(&self.tiers, &mut rng);
            }
            state.checkpoints.push(rng);
        }
        let mut rng = state.checkpoints[ci].clone();
        let mut tier = draw_tier(&self.tiers, &mut rng);
        for _ in (ci * CHECKPOINT_STRIDE)..k {
            tier = draw_tier(&self.tiers, &mut rng);
        }
        let profile = DeviceProfile::from_tier(tier);
        state.profiles.insert(k, profile);
        profile
    }

    fn materialized(&self) -> usize {
        self.state.lock().expect("lazy fleet lock").profiles.len()
    }

    /// Streams the full tier sequence without memoizing anything:
    /// `O(num_devices)` time, `O(1)` extra memory.
    fn mean_capability(&self) -> f64 {
        if self.num_devices == 0 {
            return 0.0;
        }
        let mut rng = rng_from_seed(self.stream_seed);
        let mut sum = 0.0;
        for _ in 0..self.num_devices {
            sum += DeviceProfile::from_tier(draw_tier(&self.tiers, &mut rng)).capability;
        }
        sum / self.num_devices as f64
    }
}

impl std::fmt::Debug for LazyTiers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyTiers")
            .field("num_devices", &self.num_devices)
            .field("materialized", &self.materialized())
            .finish_non_exhaustive()
    }
}

/// The physical representation behind a [`DeviceFleet`].
#[derive(Debug, Clone)]
enum FleetRepr {
    /// Every profile pre-built (the historical representation).
    Dense(Vec<DeviceProfile>),
    /// Profiles materialized on demand; clones share one memo cache.
    Lazy(Arc<LazyTiers>),
}

/// A fleet of edge devices with static tiers and optional dynamics.
///
/// See the [module docs](self) for the dense/lazy representation contract.
#[derive(Debug, Clone)]
pub struct DeviceFleet {
    repr: FleetRepr,
    level: HeterogeneityLevel,
    dynamics: DynamicsConfig,
    seed: u64,
}

impl DeviceFleet {
    /// Samples a fleet of `num_devices` devices from the given heterogeneity
    /// level, uniformly over its tier pool (the paper's configuration).
    /// Materializes every profile up front; see [`DeviceFleet::lazy`] for the
    /// `O(touched)`-memory representation of the same fleet.
    pub fn sample(num_devices: usize, level: HeterogeneityLevel, seed: u64) -> Self {
        let tiers = level.tiers();
        let mut rng = rng_from_seed(split_seed(seed, 0xDE71CE));
        let devices = (0..num_devices)
            .map(|_| DeviceProfile::from_tier(draw_tier(&tiers, &mut rng)))
            .collect();
        Self {
            repr: FleetRepr::Dense(devices),
            level,
            dynamics: DynamicsConfig::default(),
            seed,
        }
    }

    /// Registers a fleet of `num_devices` devices without materializing any
    /// profile: each profile is computed from `(seed, id)` on first access
    /// and memoized sparsely. Bit-identical to [`DeviceFleet::sample`] at
    /// equal arguments, with resident memory proportional to the number of
    /// *distinct devices touched* rather than the registered population.
    pub fn lazy(num_devices: usize, level: HeterogeneityLevel, seed: u64) -> Self {
        let tiers = level.tiers();
        Self {
            repr: FleetRepr::Lazy(Arc::new(LazyTiers::new(
                num_devices,
                tiers,
                split_seed(seed, 0xDE71CE),
            ))),
            level,
            dynamics: DynamicsConfig::default(),
            seed,
        }
    }

    /// Builds a fleet from explicit profiles.
    pub fn from_profiles(devices: Vec<DeviceProfile>, seed: u64) -> Self {
        Self {
            repr: FleetRepr::Dense(devices),
            level: HeterogeneityLevel::High,
            dynamics: DynamicsConfig::default(),
            seed,
        }
    }

    /// Enables per-round availability dynamics (the "Dyn" configurations of
    /// the paper's Table II ablation).
    pub fn with_dynamics(mut self, dynamics: DynamicsConfig) -> Self {
        self.dynamics = dynamics;
        self
    }

    /// The fleet's availability-dynamics configuration.
    pub fn dynamics(&self) -> DynamicsConfig {
        self.dynamics
    }

    /// Number of devices in the fleet.
    pub fn len(&self) -> usize {
        match &self.repr {
            FleetRepr::Dense(devices) => devices.len(),
            FleetRepr::Lazy(lazy) => lazy.num_devices,
        }
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this fleet uses the lazy `O(touched)`-memory representation.
    pub fn is_lazy(&self) -> bool {
        matches!(self.repr, FleetRepr::Lazy(_))
    }

    /// Number of device profiles currently resident in memory: the full
    /// population for a dense fleet, the distinct devices touched so far for
    /// a lazy one. The population-scale bench asserts on this to pin the
    /// `O(active participants)` memory contract.
    pub fn materialized_profiles(&self) -> usize {
        match &self.repr {
            FleetRepr::Dense(devices) => devices.len(),
            FleetRepr::Lazy(lazy) => lazy.materialized(),
        }
    }

    /// The heterogeneity level the fleet was sampled from.
    pub fn level(&self) -> HeterogeneityLevel {
        self.level
    }

    /// The *static* profile of device `k` (its nominal tier). `O(1)` on a
    /// dense fleet; on a lazy fleet the first access to an index region
    /// replays at most `CHECKPOINT_STRIDE` (4096) tier draws and memoizes the
    /// result.
    pub fn static_profile(&self, k: usize) -> DeviceProfile {
        match &self.repr {
            FleetRepr::Dense(devices) => devices[k],
            FleetRepr::Lazy(lazy) => lazy.profile(k),
        }
    }

    /// All static profiles as one slice.
    ///
    /// Only the dense representation can answer this without materializing
    /// the whole population, so this method **panics on a lazy fleet** —
    /// iterate [`static_profile`](Self::static_profile) over the ids you
    /// actually need instead, which is also why the method is deprecated.
    #[deprecated(
        since = "0.1.0",
        note = "forces full materialization; iterate `static_profile(k)` over the ids you need"
    )]
    pub fn profiles(&self) -> &[DeviceProfile] {
        match &self.repr {
            FleetRepr::Dense(devices) => devices,
            FleetRepr::Lazy(_) => panic!(
                "DeviceFleet::profiles() would materialize a lazy fleet of {} devices; \
                 iterate static_profile(k) instead",
                self.len()
            ),
        }
    }

    /// The profile of device `k` as available in round `r`: the static profile
    /// scaled by a deterministic pseudo-random availability factor when
    /// dynamics are enabled.
    pub fn available_profile(&self, k: usize, round: usize) -> DeviceProfile {
        let base = self.static_profile(k);
        if !self.dynamics.enabled {
            return base;
        }
        let mut rng = rng_from_seed(split_seed(
            self.seed,
            0xD1A1 ^ ((k as u64) << 20) ^ round as u64,
        ));
        let span = 1.0 - self.dynamics.min_availability;
        let factor = self.dynamics.min_availability + span * rng.gen::<f64>();
        base.with_availability(factor)
    }

    /// Whether device `k` churns offline during scheduling tick `tick` (a
    /// round index for cohort modes, a dispatch sequence number for the async
    /// pipeline), and if so, the fraction of its own latency it completes
    /// before disconnecting.
    ///
    /// Deterministic in `(fleet seed, k, tick)` and independent of everything
    /// else, so event-driven schedules replay bit-identically. Returns `None`
    /// unless dynamics are enabled with a positive `offline_prob`.
    pub fn offline_churn(&self, k: usize, tick: u64) -> Option<f64> {
        if !self.dynamics.enabled || self.dynamics.offline_prob <= 0.0 {
            return None;
        }
        let mut rng = rng_from_seed(split_seed(self.seed, 0x0FF11E ^ ((k as u64) << 24) ^ tick));
        if rng.gen::<f64>() >= self.dynamics.offline_prob {
            return None;
        }
        // Died somewhere strictly inside the round: never at 0 (that would be
        // "never dispatched") and never at 1 (that would be an arrival).
        Some((rng.gen::<f64>() * 0.98 + 0.01).clamp(0.01, 0.99))
    }

    /// Mean capability fraction of the fleet (a summary used in logs). On a
    /// lazy fleet this streams the tier sequence in `O(len)` time but `O(1)`
    /// extra memory — nothing is materialized.
    pub fn mean_capability(&self) -> f64 {
        match &self.repr {
            FleetRepr::Dense(devices) => {
                if devices.is_empty() {
                    return 0.0;
                }
                devices.iter().map(|d| d.capability).sum::<f64>() / devices.len() as f64
            }
            FleetRepr::Lazy(lazy) => lazy.mean_capability(),
        }
    }
}

// Serialization is manual because the two representations serialize
// differently: a dense fleet records its profiles verbatim (round-trips any
// `from_profiles` fleet), while a lazy fleet records only its registered size
// — its profiles are recomputed from `(seed, level)` on demand, so persisting
// them would defeat the representation.
impl Serialize for DeviceFleet {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("level".to_string(), self.level.to_value()),
            ("dynamics".to_string(), self.dynamics.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ];
        match &self.repr {
            FleetRepr::Dense(devices) => {
                fields.push(("devices".to_string(), devices.to_value()));
            }
            FleetRepr::Lazy(lazy) => {
                fields.push(("lazy_devices".to_string(), lazy.num_devices.to_value()));
            }
        }
        serde::Value::Obj(fields)
    }
}

impl<'de> Deserialize<'de> for DeviceFleet {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let level = HeterogeneityLevel::from_value(value.field("level")?)?;
        let dynamics = DynamicsConfig::from_value(value.field("dynamics")?)?;
        let seed = u64::from_value(value.field("seed")?)?;
        let repr = if let Ok(devices) = value.field("devices") {
            FleetRepr::Dense(Vec::<DeviceProfile>::from_value(devices)?)
        } else {
            let num_devices = usize::from_value(value.field("lazy_devices")?)?;
            FleetRepr::Lazy(Arc::new(LazyTiers::new(
                num_devices,
                level.tiers(),
                split_seed(seed, 0xDE71CE),
            )))
        };
        Ok(Self {
            repr,
            level,
            dynamics,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_pools_match_paper() {
        assert_eq!(HeterogeneityLevel::Low.tiers().len(), 2);
        assert_eq!(HeterogeneityLevel::Median.tiers().len(), 3);
        assert_eq!(HeterogeneityLevel::High.tiers().len(), 5);
        assert_eq!(HeterogeneityLevel::None.tiers().len(), 1);
    }

    /// All static profiles of a fleet, via the non-deprecated per-id API.
    fn all_profiles(fleet: &DeviceFleet) -> Vec<DeviceProfile> {
        (0..fleet.len()).map(|k| fleet.static_profile(k)).collect()
    }

    #[test]
    fn sampled_fleet_only_uses_allowed_tiers() {
        let fleet = DeviceFleet::sample(50, HeterogeneityLevel::Low, 3);
        assert_eq!(fleet.len(), 50);
        for d in all_profiles(&fleet) {
            assert!(d.capability >= 0.5 - 1e-12);
        }
    }

    #[test]
    fn higher_heterogeneity_reduces_mean_capability() {
        let low = DeviceFleet::sample(200, HeterogeneityLevel::Low, 5);
        let high = DeviceFleet::sample(200, HeterogeneityLevel::High, 5);
        assert!(low.mean_capability() > high.mean_capability());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = DeviceFleet::sample(10, HeterogeneityLevel::High, 7);
        let b = DeviceFleet::sample(10, HeterogeneityLevel::High, 7);
        let c = DeviceFleet::sample(10, HeterogeneityLevel::High, 8);
        assert_eq!(all_profiles(&a), all_profiles(&b));
        assert_ne!(all_profiles(&a), all_profiles(&c));
    }

    #[test]
    fn lazy_fleet_is_bit_identical_to_dense_sample() {
        for level in [
            HeterogeneityLevel::None,
            HeterogeneityLevel::Low,
            HeterogeneityLevel::Median,
            HeterogeneityLevel::High,
        ] {
            for seed in [0, 7, 4242] {
                let dense = DeviceFleet::sample(300, level, seed);
                let lazy = DeviceFleet::lazy(300, level, seed);
                assert_eq!(
                    all_profiles(&dense),
                    all_profiles(&lazy),
                    "level {} seed {seed}",
                    level.name()
                );
            }
        }
    }

    #[test]
    fn lazy_fleet_replay_is_access_order_independent_across_checkpoints() {
        // Spans several CHECKPOINT_STRIDE regions, probed out of order and
        // with repeats; each probe must match the dense fleet regardless of
        // which checkpoints were built first.
        let n = 3 * CHECKPOINT_STRIDE + 17;
        let dense = DeviceFleet::sample(n, HeterogeneityLevel::High, 11);
        let lazy = DeviceFleet::lazy(n, HeterogeneityLevel::High, 11);
        let probes = [
            n - 1,
            0,
            2 * CHECKPOINT_STRIDE + 5,
            CHECKPOINT_STRIDE - 1,
            CHECKPOINT_STRIDE,
            0,
            n - 1,
            CHECKPOINT_STRIDE + 1,
        ];
        for &k in &probes {
            assert_eq!(
                lazy.static_profile(k),
                dense.static_profile(k),
                "device {k}"
            );
        }
        let distinct = probes.iter().collect::<std::collections::BTreeSet<_>>();
        assert_eq!(lazy.materialized_profiles(), distinct.len());
        assert_eq!(dense.materialized_profiles(), n);
    }

    #[test]
    fn lazy_fleet_mean_capability_matches_dense_without_materializing() {
        let dense = DeviceFleet::sample(5000, HeterogeneityLevel::Median, 3);
        let lazy = DeviceFleet::lazy(5000, HeterogeneityLevel::Median, 3);
        assert_eq!(lazy.mean_capability(), dense.mean_capability());
        assert_eq!(lazy.materialized_profiles(), 0);
    }

    #[test]
    fn lazy_fleet_clones_share_one_memo_cache() {
        let lazy = DeviceFleet::lazy(100, HeterogeneityLevel::High, 7);
        let clone = lazy.clone();
        let _ = clone.static_profile(42);
        assert_eq!(lazy.materialized_profiles(), 1);
    }

    #[test]
    fn fleet_serde_round_trips_both_representations() {
        let dense = DeviceFleet::sample(8, HeterogeneityLevel::Low, 5);
        let restored = DeviceFleet::from_value(&dense.to_value()).expect("dense round-trip");
        assert!(!restored.is_lazy());
        assert_eq!(all_profiles(&restored), all_profiles(&dense));

        let lazy = DeviceFleet::lazy(1_000_000, HeterogeneityLevel::High, 5);
        let restored = DeviceFleet::from_value(&lazy.to_value()).expect("lazy round-trip");
        assert!(restored.is_lazy());
        assert_eq!(restored.len(), 1_000_000);
        assert_eq!(restored.materialized_profiles(), 0);
        assert_eq!(
            restored.static_profile(999_999),
            lazy.static_profile(999_999)
        );
    }

    #[test]
    fn static_profile_without_dynamics_is_stable() {
        let fleet = DeviceFleet::sample(5, HeterogeneityLevel::High, 1);
        for r in 0..5 {
            assert_eq!(fleet.available_profile(2, r), fleet.static_profile(2));
        }
    }

    #[test]
    fn dynamics_vary_but_respect_floor() {
        let fleet =
            DeviceFleet::sample(5, HeterogeneityLevel::High, 1).with_dynamics(DynamicsConfig {
                enabled: true,
                min_availability: 0.5,
                ..DynamicsConfig::default()
            });
        let base = fleet.static_profile(0);
        let mut saw_change = false;
        for r in 0..20 {
            let p = fleet.available_profile(0, r);
            assert!(p.compute_flops_per_sec <= base.compute_flops_per_sec + 1.0);
            assert!(p.compute_flops_per_sec >= base.compute_flops_per_sec * 0.5 * 0.999);
            if (p.compute_flops_per_sec - base.compute_flops_per_sec).abs() > 1.0 {
                saw_change = true;
            }
        }
        assert!(saw_change);
    }

    #[test]
    fn dynamics_are_deterministic() {
        let mk = || {
            DeviceFleet::sample(3, HeterogeneityLevel::High, 9).with_dynamics(DynamicsConfig {
                enabled: true,
                min_availability: 0.3,
                ..DynamicsConfig::default()
            })
        };
        assert_eq!(mk().available_profile(1, 4), mk().available_profile(1, 4));
    }

    #[test]
    fn offline_churn_is_off_by_default_and_deterministic_when_on() {
        let quiet =
            DeviceFleet::sample(4, HeterogeneityLevel::High, 2).with_dynamics(DynamicsConfig {
                enabled: true,
                min_availability: 0.5,
                ..DynamicsConfig::default()
            });
        for k in 0..4 {
            for tick in 0..10 {
                assert_eq!(quiet.offline_churn(k, tick), None, "offline_prob 0");
            }
        }

        let mk = || {
            DeviceFleet::sample(4, HeterogeneityLevel::High, 2).with_dynamics(
                DynamicsConfig {
                    enabled: true,
                    min_availability: 0.5,
                    ..DynamicsConfig::default()
                }
                .with_offline_prob(0.5),
            )
        };
        let churny = mk();
        let mut saw_some = false;
        let mut saw_none = false;
        for k in 0..4 {
            for tick in 0..20 {
                let churn = churny.offline_churn(k, tick);
                assert_eq!(churn, mk().offline_churn(k, tick), "deterministic");
                match churn {
                    Some(frac) => {
                        assert!((0.01..=0.99).contains(&frac), "{frac}");
                        saw_some = true;
                    }
                    None => saw_none = true,
                }
            }
        }
        assert!(saw_some && saw_none, "p=0.5 churn should mix outcomes");
    }

    #[test]
    fn dynamics_validation_rejects_bad_knobs_with_actionable_messages() {
        assert!(DynamicsConfig::default().validate().is_ok());
        assert!(DynamicsConfig::default()
            .with_offline_prob(0.99)
            .validate()
            .is_ok());
        // Out-of-range probability, and prob = 1.0 specifically: certain
        // churn would starve the async pipeline (no update ever lands).
        for bad in [1.5, 1.0, -0.1] {
            let err = DynamicsConfig::default()
                .with_offline_prob(bad)
                .validate()
                .unwrap_err();
            assert!(err.contains("offline_prob"), "{err}");
            assert!(err.contains(&bad.to_string()), "{err}");
        }
        let err = DynamicsConfig {
            min_availability: -0.2,
            ..DynamicsConfig::default()
        }
        .validate()
        .unwrap_err();
        assert!(err.contains("min_availability"), "{err}");
    }
}
