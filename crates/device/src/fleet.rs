//! Device fleets and heterogeneity levels.
//!
//! The paper samples each client's capability tier uniformly from a tier set
//! that depends on the system-heterogeneity level (Figures 7-8): *low* uses
//! `{1, 1/2}`, *median* `{1, 1/2, 1/4}` and *high* the full
//! `{1, 1/2, 1/4, 1/8, 1/16}`. During training the locally *available*
//! capability can additionally fluctuate because devices run other workloads;
//! the fleet models this with a per-round availability factor.

use fedlps_tensor::{rng_from_seed, split_seed};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::capability::{CapabilityTier, DeviceProfile};

/// The three system-heterogeneity levels swept in Figures 7-8, plus the
/// homogeneous control setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeterogeneityLevel {
    /// All devices are top tier (no system heterogeneity).
    None,
    /// Tiers sampled from `{1, 1/2}`.
    Low,
    /// Tiers sampled from `{1, 1/2, 1/4}`.
    Median,
    /// Tiers sampled from `{1, 1/2, 1/4, 1/8, 1/16}` — the paper's default.
    High,
}

impl HeterogeneityLevel {
    /// The tier pool associated with the level.
    pub fn tiers(&self) -> Vec<CapabilityTier> {
        match self {
            HeterogeneityLevel::None => vec![CapabilityTier::Full],
            HeterogeneityLevel::Low => vec![CapabilityTier::Full, CapabilityTier::Half],
            HeterogeneityLevel::Median => vec![
                CapabilityTier::Full,
                CapabilityTier::Half,
                CapabilityTier::Quarter,
            ],
            HeterogeneityLevel::High => CapabilityTier::all().to_vec(),
        }
    }

    /// Level name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            HeterogeneityLevel::None => "none",
            HeterogeneityLevel::Low => "low",
            HeterogeneityLevel::Median => "median",
            HeterogeneityLevel::High => "high",
        }
    }

    /// The three levels compared in Figures 7-8.
    pub fn swept() -> [HeterogeneityLevel; 3] {
        [
            HeterogeneityLevel::Low,
            HeterogeneityLevel::Median,
            HeterogeneityLevel::High,
        ]
    }
}

/// Configuration of per-round availability dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicsConfig {
    /// Whether availability fluctuates at all.
    pub enabled: bool,
    /// Minimum availability factor (1.0 = full capability available).
    pub min_availability: f64,
    /// Probability that a participating device churns offline mid-round and
    /// its update is lost. Only the event-driven round modes observe this
    /// (a synchronous server waits for the device to come back); 0 disables
    /// churn entirely.
    pub offline_prob: f64,
}

impl Default for DynamicsConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            min_availability: 0.5,
            offline_prob: 0.0,
        }
    }
}

impl DynamicsConfig {
    /// Builder-style override of the mid-round offline-churn probability.
    /// Strictly below 1: certain churn would mean no update ever completes,
    /// which starves the async pipeline (every slot refills forever and no
    /// aggregation can happen).
    pub fn with_offline_prob(mut self, prob: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&prob),
            "offline probability must be in [0, 1), got {prob}"
        );
        self.offline_prob = prob;
        self
    }
}

/// A fleet of edge devices with static tiers and optional dynamics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceFleet {
    devices: Vec<DeviceProfile>,
    level: HeterogeneityLevel,
    dynamics: DynamicsConfig,
    seed: u64,
}

impl DeviceFleet {
    /// Samples a fleet of `num_devices` devices from the given heterogeneity
    /// level, uniformly over its tier pool (the paper's configuration).
    pub fn sample(num_devices: usize, level: HeterogeneityLevel, seed: u64) -> Self {
        let tiers = level.tiers();
        let mut rng = rng_from_seed(split_seed(seed, 0xDE71CE));
        let devices = (0..num_devices)
            .map(|_| {
                let tier = tiers[rng.gen_range(0..tiers.len())];
                DeviceProfile::from_tier(tier)
            })
            .collect();
        Self {
            devices,
            level,
            dynamics: DynamicsConfig::default(),
            seed,
        }
    }

    /// Builds a fleet from explicit profiles.
    pub fn from_profiles(devices: Vec<DeviceProfile>, seed: u64) -> Self {
        Self {
            devices,
            level: HeterogeneityLevel::High,
            dynamics: DynamicsConfig::default(),
            seed,
        }
    }

    /// Enables per-round availability dynamics (the "Dyn" configurations of
    /// the paper's Table II ablation).
    pub fn with_dynamics(mut self, dynamics: DynamicsConfig) -> Self {
        self.dynamics = dynamics;
        self
    }

    /// Number of devices in the fleet.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The heterogeneity level the fleet was sampled from.
    pub fn level(&self) -> HeterogeneityLevel {
        self.level
    }

    /// The *static* profile of device `k` (its nominal tier).
    pub fn static_profile(&self, k: usize) -> DeviceProfile {
        self.devices[k]
    }

    /// All static profiles.
    pub fn profiles(&self) -> &[DeviceProfile] {
        &self.devices
    }

    /// The profile of device `k` as available in round `r`: the static profile
    /// scaled by a deterministic pseudo-random availability factor when
    /// dynamics are enabled.
    pub fn available_profile(&self, k: usize, round: usize) -> DeviceProfile {
        let base = self.devices[k];
        if !self.dynamics.enabled {
            return base;
        }
        let mut rng = rng_from_seed(split_seed(
            self.seed,
            0xD1A1 ^ ((k as u64) << 20) ^ round as u64,
        ));
        let span = 1.0 - self.dynamics.min_availability;
        let factor = self.dynamics.min_availability + span * rng.gen::<f64>();
        base.with_availability(factor)
    }

    /// Whether device `k` churns offline during scheduling tick `tick` (a
    /// round index for cohort modes, a dispatch sequence number for the async
    /// pipeline), and if so, the fraction of its own latency it completes
    /// before disconnecting.
    ///
    /// Deterministic in `(fleet seed, k, tick)` and independent of everything
    /// else, so event-driven schedules replay bit-identically. Returns `None`
    /// unless dynamics are enabled with a positive `offline_prob`.
    pub fn offline_churn(&self, k: usize, tick: u64) -> Option<f64> {
        if !self.dynamics.enabled || self.dynamics.offline_prob <= 0.0 {
            return None;
        }
        let mut rng = rng_from_seed(split_seed(self.seed, 0x0FF11E ^ ((k as u64) << 24) ^ tick));
        if rng.gen::<f64>() >= self.dynamics.offline_prob {
            return None;
        }
        // Died somewhere strictly inside the round: never at 0 (that would be
        // "never dispatched") and never at 1 (that would be an arrival).
        Some((rng.gen::<f64>() * 0.98 + 0.01).clamp(0.01, 0.99))
    }

    /// Mean capability fraction of the fleet (a summary used in logs).
    pub fn mean_capability(&self) -> f64 {
        if self.devices.is_empty() {
            return 0.0;
        }
        self.devices.iter().map(|d| d.capability).sum::<f64>() / self.devices.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_pools_match_paper() {
        assert_eq!(HeterogeneityLevel::Low.tiers().len(), 2);
        assert_eq!(HeterogeneityLevel::Median.tiers().len(), 3);
        assert_eq!(HeterogeneityLevel::High.tiers().len(), 5);
        assert_eq!(HeterogeneityLevel::None.tiers().len(), 1);
    }

    #[test]
    fn sampled_fleet_only_uses_allowed_tiers() {
        let fleet = DeviceFleet::sample(50, HeterogeneityLevel::Low, 3);
        assert_eq!(fleet.len(), 50);
        for d in fleet.profiles() {
            assert!(d.capability >= 0.5 - 1e-12);
        }
    }

    #[test]
    fn higher_heterogeneity_reduces_mean_capability() {
        let low = DeviceFleet::sample(200, HeterogeneityLevel::Low, 5);
        let high = DeviceFleet::sample(200, HeterogeneityLevel::High, 5);
        assert!(low.mean_capability() > high.mean_capability());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = DeviceFleet::sample(10, HeterogeneityLevel::High, 7);
        let b = DeviceFleet::sample(10, HeterogeneityLevel::High, 7);
        let c = DeviceFleet::sample(10, HeterogeneityLevel::High, 8);
        assert_eq!(a.profiles(), b.profiles());
        assert_ne!(a.profiles(), c.profiles());
    }

    #[test]
    fn static_profile_without_dynamics_is_stable() {
        let fleet = DeviceFleet::sample(5, HeterogeneityLevel::High, 1);
        for r in 0..5 {
            assert_eq!(fleet.available_profile(2, r), fleet.static_profile(2));
        }
    }

    #[test]
    fn dynamics_vary_but_respect_floor() {
        let fleet =
            DeviceFleet::sample(5, HeterogeneityLevel::High, 1).with_dynamics(DynamicsConfig {
                enabled: true,
                min_availability: 0.5,
                ..DynamicsConfig::default()
            });
        let base = fleet.static_profile(0);
        let mut saw_change = false;
        for r in 0..20 {
            let p = fleet.available_profile(0, r);
            assert!(p.compute_flops_per_sec <= base.compute_flops_per_sec + 1.0);
            assert!(p.compute_flops_per_sec >= base.compute_flops_per_sec * 0.5 * 0.999);
            if (p.compute_flops_per_sec - base.compute_flops_per_sec).abs() > 1.0 {
                saw_change = true;
            }
        }
        assert!(saw_change);
    }

    #[test]
    fn dynamics_are_deterministic() {
        let mk = || {
            DeviceFleet::sample(3, HeterogeneityLevel::High, 9).with_dynamics(DynamicsConfig {
                enabled: true,
                min_availability: 0.3,
                ..DynamicsConfig::default()
            })
        };
        assert_eq!(mk().available_profile(1, 4), mk().available_profile(1, 4));
    }

    #[test]
    fn offline_churn_is_off_by_default_and_deterministic_when_on() {
        let quiet =
            DeviceFleet::sample(4, HeterogeneityLevel::High, 2).with_dynamics(DynamicsConfig {
                enabled: true,
                min_availability: 0.5,
                ..DynamicsConfig::default()
            });
        for k in 0..4 {
            for tick in 0..10 {
                assert_eq!(quiet.offline_churn(k, tick), None, "offline_prob 0");
            }
        }

        let mk = || {
            DeviceFleet::sample(4, HeterogeneityLevel::High, 2).with_dynamics(
                DynamicsConfig {
                    enabled: true,
                    min_availability: 0.5,
                    ..DynamicsConfig::default()
                }
                .with_offline_prob(0.5),
            )
        };
        let churny = mk();
        let mut saw_some = false;
        let mut saw_none = false;
        for k in 0..4 {
            for tick in 0..20 {
                let churn = churny.offline_churn(k, tick);
                assert_eq!(churn, mk().offline_churn(k, tick), "deterministic");
                match churn {
                    Some(frac) => {
                        assert!((0.01..=0.99).contains(&frac), "{frac}");
                        saw_some = true;
                    }
                    None => saw_none = true,
                }
            }
        }
        assert!(saw_some && saw_none, "p=0.5 churn should mix outcomes");
    }

    #[test]
    #[should_panic]
    fn offline_prob_out_of_range_rejected() {
        DynamicsConfig::default().with_offline_prob(1.5);
    }

    #[test]
    #[should_panic]
    fn certain_offline_churn_rejected() {
        // prob = 1.0 would starve the async pipeline: no update ever lands.
        DynamicsConfig::default().with_offline_prob(1.0);
    }
}
