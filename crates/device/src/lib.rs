//! System-heterogeneity model.
//!
//! The paper's experimental fleet has five capability tiers
//! `z ∈ {1, 1/2, 1/4, 1/8, 1/16}`, anchored to an Adreno-630-class device
//! (727 GFLOPS), with local wall-clock cost modelled analytically as
//! `T = F̂/F + α · B̂/B` (Eq. 14) — compute FLOPs over compute capacity plus
//! communication volume over bandwidth. This crate implements:
//!
//! * [`capability`] — the capability tiers and per-device profiles;
//! * [`fleet`] — fleets sampled from a heterogeneity level (low / median /
//!   high, Figures 7-8) with optional round-to-round availability dynamics;
//! * [`cost`] — the Eq. 14 cost model and the synchronous global round cost
//!   `T^r = max_k T_k^r` (Eq. 18).

pub mod capability;
pub mod cost;
pub mod fleet;

pub use capability::{CapabilityTier, DeviceProfile};
pub use cost::{CostModel, LocalCost};
pub use fleet::{DeviceFleet, HeterogeneityLevel};
