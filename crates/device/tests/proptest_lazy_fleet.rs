//! Property tests pinning the lazy fleet's bit-identity contract (ISSUE 7):
//! for every heterogeneity level, seed and population size, a profile looked
//! up by id on a [`DeviceFleet::lazy`] fleet equals the one
//! [`DeviceFleet::sample`] pre-built — under arbitrary access order — and
//! resident memory tracks the distinct ids touched, not the population.

use std::collections::BTreeSet;

use fedlps_device::{DeviceFleet, HeterogeneityLevel};
use proptest::prelude::*;

const LEVELS: [HeterogeneityLevel; 4] = [
    HeterogeneityLevel::None,
    HeterogeneityLevel::Low,
    HeterogeneityLevel::Median,
    HeterogeneityLevel::High,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lazy profile-by-id is bit-identical to the dense constructor's
    /// pre-built `Vec` at equal `(size, level, seed)`, no matter in which
    /// order (or how often) the ids are touched.
    #[test]
    fn lazy_profiles_match_dense_sample(
        level_index in 0usize..4,
        seed in 0u64..1_000_000,
        num_devices in 1usize..9000,
        probes in prop::collection::vec(0usize..9000, 1..40),
    ) {
        let level = LEVELS[level_index];
        let dense = DeviceFleet::sample(num_devices, level, seed);
        let lazy = DeviceFleet::lazy(num_devices, level, seed);
        let mut touched = BTreeSet::new();
        for p in probes {
            let k = p % num_devices;
            touched.insert(k);
            prop_assert_eq!(
                lazy.static_profile(k),
                dense.static_profile(k),
                "device {} of {} (level {}, seed {})",
                k, num_devices, level.name(), seed
            );
        }
        // Memory contract: exactly the distinct touched ids are resident.
        prop_assert_eq!(lazy.materialized_profiles(), touched.len());
    }

    /// Availability dynamics and churn are pure per-id functions, so they too
    /// agree between the representations.
    #[test]
    fn lazy_dynamics_match_dense_sample(
        seed in 0u64..100_000,
        num_devices in 1usize..200,
        k in 0usize..200,
        round in 0usize..50,
    ) {
        use fedlps_device::fleet::DynamicsConfig;
        let k = k % num_devices;
        let dynamics = DynamicsConfig {
            enabled: true,
            min_availability: 0.4,
            ..DynamicsConfig::default()
        }
        .with_offline_prob(0.3);
        let dense = DeviceFleet::sample(num_devices, HeterogeneityLevel::High, seed)
            .with_dynamics(dynamics);
        let lazy = DeviceFleet::lazy(num_devices, HeterogeneityLevel::High, seed)
            .with_dynamics(dynamics);
        prop_assert_eq!(lazy.available_profile(k, round), dense.available_profile(k, round));
        prop_assert_eq!(lazy.offline_churn(k, round as u64), dense.offline_churn(k, round as u64));
    }
}
