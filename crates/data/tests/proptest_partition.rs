//! Property-based tests of the non-IID partitioners.

use fedlps_data::partition::PartitionStrategy;
use fedlps_tensor::rng_from_seed;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strategy gives every client exactly the requested sample count.
    #[test]
    fn partitions_preserve_sample_counts(clients in 1usize..12, classes in 2usize..15,
                                          per_client in 1usize..80, seed in 0u64..500,
                                          classes_per_client in 1usize..6, alpha in 0.05f64..5.0) {
        let mut rng = rng_from_seed(seed);
        for strategy in [
            PartitionStrategy::Iid,
            PartitionStrategy::Pathological { classes_per_client },
            PartitionStrategy::Dirichlet { alpha },
        ] {
            let counts = strategy.class_counts(clients, classes, per_client, &mut rng);
            prop_assert_eq!(counts.len(), clients);
            for c in &counts {
                prop_assert_eq!(c.len(), classes);
                prop_assert_eq!(c.iter().sum::<usize>(), per_client);
            }
        }
    }

    /// The pathological partition never gives a client more distinct classes
    /// than requested.
    #[test]
    fn pathological_limits_class_support(clients in 1usize..12, classes in 2usize..15,
                                          per_client in 1usize..60, seed in 0u64..500,
                                          classes_per_client in 1usize..6) {
        let mut rng = rng_from_seed(seed);
        let counts = PartitionStrategy::Pathological { classes_per_client }
            .class_counts(clients, classes, per_client, &mut rng);
        for c in &counts {
            let support = c.iter().filter(|&&n| n > 0).count();
            prop_assert!(support <= classes_per_client.clamp(1, classes));
        }
    }
}
