//! Synthetic image-classification data.
//!
//! Each class `c` gets a Gaussian prototype `μ_c`; a sample of class `c` is
//! `μ_c + σ·ε` with `ε ~ N(0, I)`, optionally passed through a per-client
//! affine "style" transform so that clients differ not only in label
//! distribution but also mildly in feature distribution (feature-shift
//! non-IIDness on top of the label-skew partitioning).
//!
//! This substitutes for MNIST / CIFAR-10 / CIFAR-100 / Tiny-ImageNet in the
//! paper's evaluation: the difficulty knobs are the number of classes, the
//! feature dimensionality, the prototype separation and the noise level.

use fedlps_tensor::{rng::sample_normal, rng_from_seed, Matrix};
use rand::Rng;

use crate::dataset::{Dataset, InputKind};

/// Configuration of the synthetic vision generator.
#[derive(Debug, Clone)]
pub struct SyntheticVisionConfig {
    /// Number of classes (10 for the MNIST/CIFAR-10 analogues, 100/200 for the
    /// CIFAR-100 / Tiny-ImageNet analogues — scaled down in the scenarios).
    pub num_classes: usize,
    /// Image shape; features are `channels * height * width` floats.
    pub channels: usize,
    pub height: usize,
    pub width: usize,
    /// Distance scale between class prototypes; larger = easier task.
    pub prototype_scale: f32,
    /// Per-sample Gaussian noise level; larger = harder task.
    pub noise: f32,
    /// Strength of the per-client style shift (0 disables it).
    pub client_shift: f32,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SyntheticVisionConfig {
    fn default() -> Self {
        Self {
            num_classes: 10,
            channels: 1,
            height: 6,
            width: 6,
            prototype_scale: 2.0,
            noise: 0.8,
            client_shift: 0.3,
            seed: 7,
        }
    }
}

impl SyntheticVisionConfig {
    /// Feature dimensionality of a sample.
    pub fn feature_dim(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// The [`InputKind`] advertised by generated datasets.
    pub fn input_kind(&self) -> InputKind {
        InputKind::Image {
            channels: self.channels,
            height: self.height,
            width: self.width,
        }
    }
}

/// Synthetic vision generator holding the class prototypes.
#[derive(Debug, Clone)]
pub struct SyntheticVision {
    config: SyntheticVisionConfig,
    /// `num_classes x feature_dim` prototype matrix.
    prototypes: Matrix,
}

impl SyntheticVision {
    /// Draws the class prototypes from the config's seed.
    pub fn new(config: SyntheticVisionConfig) -> Self {
        let mut rng = rng_from_seed(config.seed);
        let dim = config.feature_dim();
        let prototypes = Matrix::from_fn(config.num_classes, dim, |_, _| {
            sample_normal(&mut rng) * config.prototype_scale
        });
        Self { config, prototypes }
    }

    /// Generator configuration.
    pub fn config(&self) -> &SyntheticVisionConfig {
        &self.config
    }

    /// Class prototypes (one row per class).
    pub fn prototypes(&self) -> &Matrix {
        &self.prototypes
    }

    /// Generates `counts[c]` samples of each class `c`, applying the style
    /// shift of `client_id`, and returns them in label order.
    pub fn generate_for_client(&self, client_id: usize, counts: &[usize]) -> Dataset {
        assert_eq!(counts.len(), self.config.num_classes);
        let dim = self.config.feature_dim();
        let total: usize = counts.iter().sum();
        let mut rng = rng_from_seed(fedlps_tensor::split_seed(
            self.config.seed,
            0x5EED + client_id as u64,
        ));

        // Per-client style shift: a fixed offset vector drawn once per client.
        let shift: Vec<f32> = (0..dim)
            .map(|_| sample_normal(&mut rng) * self.config.client_shift)
            .collect();

        let mut features = Matrix::zeros(total, dim);
        let mut labels = Vec::with_capacity(total);
        let mut row = 0;
        for (class, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                let proto = self.prototypes.row(class);
                let out = features.row_mut(row);
                for ((o, &p), &s) in out.iter_mut().zip(proto.iter()).zip(shift.iter()) {
                    *o = p + s + sample_normal(&mut rng) * self.config.noise;
                }
                labels.push(class);
                row += 1;
            }
        }
        Dataset::new(
            features,
            labels,
            self.config.num_classes,
            self.config.input_kind(),
        )
    }

    /// Generates a balanced pooled dataset of `samples_per_class` per class
    /// without any client shift (used for IID partitioning and for global
    /// evaluation baselines).
    pub fn generate_pooled(&self, samples_per_class: usize, seed_offset: u64) -> Dataset {
        let dim = self.config.feature_dim();
        let total = samples_per_class * self.config.num_classes;
        let mut rng = rng_from_seed(fedlps_tensor::split_seed(
            self.config.seed,
            0xA11 + seed_offset,
        ));
        let mut features = Matrix::zeros(total, dim);
        let mut labels = Vec::with_capacity(total);
        let mut row = 0;
        for class in 0..self.config.num_classes {
            for _ in 0..samples_per_class {
                let proto = self.prototypes.row(class);
                let out = features.row_mut(row);
                for (o, &p) in out.iter_mut().zip(proto.iter()) {
                    *o = p + sample_normal(&mut rng) * self.config.noise;
                }
                labels.push(class);
                row += 1;
            }
        }
        // Shuffle so that order-dependent splits stay class-balanced.
        let mut order: Vec<usize> = (0..total).collect();
        for i in (1..total).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let pooled = Dataset::new(
            features,
            labels,
            self.config.num_classes,
            self.config.input_kind(),
        );
        pooled.subset(&order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts() {
        let gen = SyntheticVision::new(SyntheticVisionConfig::default());
        let counts = vec![3, 0, 2, 0, 0, 0, 0, 0, 0, 1];
        let d = gen.generate_for_client(0, &counts);
        assert_eq!(d.len(), 6);
        assert_eq!(d.class_histogram(), counts);
    }

    #[test]
    fn different_clients_get_different_features_same_prototypes() {
        let gen = SyntheticVision::new(SyntheticVisionConfig::default());
        let counts = vec![2, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let a = gen.generate_for_client(0, &counts);
        let b = gen.generate_for_client(1, &counts);
        assert_ne!(a.features.row(0), b.features.row(0));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let gen1 = SyntheticVision::new(SyntheticVisionConfig::default());
        let gen2 = SyntheticVision::new(SyntheticVisionConfig::default());
        let counts = vec![1; 10];
        let a = gen1.generate_for_client(3, &counts);
        let b = gen2.generate_for_client(3, &counts);
        assert_eq!(a.features.as_slice(), b.features.as_slice());
    }

    #[test]
    fn pooled_dataset_is_balanced() {
        let gen = SyntheticVision::new(SyntheticVisionConfig::default());
        let d = gen.generate_pooled(5, 0);
        assert_eq!(d.len(), 50);
        assert!(d.class_histogram().iter().all(|&c| c == 5));
    }

    #[test]
    fn classes_are_separable_from_prototype_distance() {
        // A nearest-prototype classifier should do much better than chance —
        // this guards against generator regressions that would make every
        // downstream accuracy comparison meaningless.
        let gen = SyntheticVision::new(SyntheticVisionConfig {
            noise: 0.5,
            ..SyntheticVisionConfig::default()
        });
        let d = gen.generate_pooled(20, 1);
        let mut correct = 0;
        for i in 0..d.len() {
            let (x, y) = d.sample(i);
            let mut best = 0;
            let mut best_dist = f32::INFINITY;
            for c in 0..10 {
                let p = gen.prototypes().row(c);
                let dist: f32 = x.iter().zip(p.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
                if dist < best_dist {
                    best_dist = dist;
                    best = c;
                }
            }
            if best == y {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.len() as f64;
        assert!(acc > 0.8, "nearest-prototype accuracy {acc}");
    }
}
