//! Non-IID partitioning strategies.
//!
//! The paper's main experiments use the *pathological* partition of
//! McMahan et al. / Dai et al. \[45\]: every client is assigned a small fixed
//! number of classes (2 for MNIST/CIFAR-10, 10 for CIFAR-100, 20 for
//! Tiny-ImageNet). Figure 6 additionally sweeps the non-IID level by varying
//! how many classes each client *lacks*. This module implements that scheme
//! plus IID and Dirichlet label-skew partitioning for completeness.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the per-client class allocations are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// Every client samples uniformly from all classes.
    Iid,
    /// Pathological label skew: each client holds exactly `classes_per_client`
    /// distinct classes (the paper's default non-IID setting).
    Pathological { classes_per_client: usize },
    /// Dirichlet label skew with concentration `alpha` (smaller = more skewed).
    Dirichlet { alpha: f64 },
}

impl PartitionStrategy {
    /// Short human-readable name used in experiment logs.
    pub fn label(&self) -> String {
        match self {
            PartitionStrategy::Iid => "iid".to_string(),
            PartitionStrategy::Pathological { classes_per_client } => {
                format!("pathological({classes_per_client})")
            }
            PartitionStrategy::Dirichlet { alpha } => format!("dirichlet({alpha})"),
        }
    }

    /// Produces, for each client, the number of samples of every class it
    /// should receive, so that each client ends up with exactly
    /// `samples_per_client` samples.
    ///
    /// The result is a `num_clients x num_classes` count table that the
    /// scenario builder feeds to the data generators.
    pub fn class_counts(
        &self,
        num_clients: usize,
        num_classes: usize,
        samples_per_client: usize,
        rng: &mut impl Rng,
    ) -> Vec<Vec<usize>> {
        assert!(num_clients > 0 && num_classes > 0);
        match *self {
            PartitionStrategy::Iid => (0..num_clients)
                .map(|_| spread_evenly(samples_per_client, num_classes, None, rng))
                .collect(),
            PartitionStrategy::Pathological { classes_per_client } => {
                let per_client = classes_per_client.clamp(1, num_classes);
                // Deal classes round-robin from a shuffled deck so the overall
                // class coverage across the federation stays balanced, exactly
                // like the pathological sharding used by the paper.
                let mut deck: Vec<usize> = Vec::new();
                while deck.len() < num_clients * per_client {
                    let mut classes: Vec<usize> = (0..num_classes).collect();
                    shuffle(&mut classes, rng);
                    deck.extend(classes);
                }
                (0..num_clients)
                    .map(|k| {
                        let mut chosen: Vec<usize> =
                            deck[k * per_client..(k + 1) * per_client].to_vec();
                        chosen.sort_unstable();
                        chosen.dedup();
                        // If the deck dealt duplicate classes to one client,
                        // top up with unused classes to keep the count exact.
                        let mut extra = 0;
                        while chosen.len() < per_client {
                            let candidate = (chosen[0] + 1 + extra) % num_classes;
                            if !chosen.contains(&candidate) {
                                chosen.push(candidate);
                            }
                            extra += 1;
                        }
                        spread_evenly(samples_per_client, num_classes, Some(&chosen), rng)
                    })
                    .collect()
            }
            PartitionStrategy::Dirichlet { alpha } => (0..num_clients)
                .map(|_| {
                    let props = dirichlet_sample(num_classes, alpha, rng);
                    proportional_counts(samples_per_client, &props)
                })
                .collect(),
        }
    }
}

/// Distributes `total` samples over the allowed classes as evenly as possible
/// (all classes when `allowed` is `None`).
fn spread_evenly(
    total: usize,
    num_classes: usize,
    allowed: Option<&[usize]>,
    rng: &mut impl Rng,
) -> Vec<usize> {
    let mut counts = vec![0usize; num_classes];
    let allowed: Vec<usize> = match allowed {
        Some(a) => a.to_vec(),
        None => (0..num_classes).collect(),
    };
    assert!(!allowed.is_empty());
    let base = total / allowed.len();
    let remainder = total % allowed.len();
    for &c in &allowed {
        counts[c] = base;
    }
    // Hand out the remainder to random allowed classes.
    let mut order = allowed.clone();
    shuffle(&mut order, rng);
    for &c in order.iter().take(remainder) {
        counts[c] += 1;
    }
    counts
}

/// Rounds proportions into integer counts summing exactly to `total`.
fn proportional_counts(total: usize, proportions: &[f64]) -> Vec<usize> {
    let mut counts: Vec<usize> = proportions
        .iter()
        .map(|p| (p * total as f64).floor() as usize)
        .collect();
    let mut assigned: usize = counts.iter().sum();
    // Assign leftover samples to the classes with the largest fractional parts.
    let mut fracs: Vec<(usize, f64)> = proportions
        .iter()
        .enumerate()
        .map(|(i, p)| (i, p * total as f64 - counts[i] as f64))
        .collect();
    fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut i = 0;
    while assigned < total {
        counts[fracs[i % fracs.len()].0] += 1;
        assigned += 1;
        i += 1;
    }
    counts
}

/// Samples from a symmetric Dirichlet(alpha) via normalised Gamma draws
/// (Marsaglia–Tsang would be overkill; the simple -ln(U) trick with shape
/// boosting is accurate enough for partitioning purposes).
fn dirichlet_sample(k: usize, alpha: f64, rng: &mut impl Rng) -> Vec<f64> {
    let mut draws: Vec<f64> = (0..k).map(|_| gamma_draw(alpha, rng)).collect();
    let total: f64 = draws.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / k as f64; k];
    }
    for d in &mut draws {
        *d /= total;
    }
    draws
}

/// Gamma(shape, 1) sampling via the Ahrens–Dieter/boosting approach that only
/// needs uniform draws; adequate for shapes in (0, 10].
fn gamma_draw(shape: f64, rng: &mut impl Rng) -> f64 {
    // For shape >= 1 use the sum-of-exponentials approximation on the integer
    // part plus a fractional-part boost.
    let int_part = shape.floor() as usize;
    let frac = shape - int_part as f64;
    let mut x = 0.0;
    for _ in 0..int_part {
        let u: f64 = rng.gen::<f64>().max(1e-12);
        x += -u.ln();
    }
    if frac > 1e-9 {
        // Boosting: Gamma(frac) = Gamma(frac + 1) * U^(1/frac).
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen::<f64>().max(1e-12);
        x += -u1.ln() * u2.powf(1.0 / frac);
    }
    x
}

fn shuffle<T>(items: &mut [T], rng: &mut impl Rng) {
    if items.len() < 2 {
        return;
    }
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_tensor::rng_from_seed;

    #[test]
    fn iid_counts_sum_and_cover() {
        let mut rng = rng_from_seed(1);
        let counts = PartitionStrategy::Iid.class_counts(5, 10, 100, &mut rng);
        assert_eq!(counts.len(), 5);
        for c in &counts {
            assert_eq!(c.iter().sum::<usize>(), 100);
            assert!(
                c.iter().all(|&x| x >= 9),
                "IID split should cover all classes: {c:?}"
            );
        }
    }

    #[test]
    fn pathological_limits_classes_per_client() {
        let mut rng = rng_from_seed(2);
        let counts = PartitionStrategy::Pathological {
            classes_per_client: 2,
        }
        .class_counts(20, 10, 60, &mut rng);
        for c in &counts {
            assert_eq!(c.iter().sum::<usize>(), 60);
            let present = c.iter().filter(|&&x| x > 0).count();
            assert!(present <= 2, "client has {present} classes");
        }
        // Across the federation every class should appear somewhere.
        let mut union = [0usize; 10];
        for c in &counts {
            for (u, &x) in union.iter_mut().zip(c.iter()) {
                *u += x;
            }
        }
        assert!(union.iter().all(|&x| x > 0));
    }

    #[test]
    fn pathological_clamps_to_available_classes() {
        let mut rng = rng_from_seed(3);
        let counts = PartitionStrategy::Pathological {
            classes_per_client: 50,
        }
        .class_counts(3, 5, 25, &mut rng);
        for c in &counts {
            assert_eq!(c.iter().sum::<usize>(), 25);
        }
    }

    #[test]
    fn dirichlet_counts_sum_exactly() {
        let mut rng = rng_from_seed(4);
        let counts = PartitionStrategy::Dirichlet { alpha: 0.3 }.class_counts(8, 10, 47, &mut rng);
        for c in &counts {
            assert_eq!(c.iter().sum::<usize>(), 47);
        }
    }

    #[test]
    fn dirichlet_low_alpha_is_more_skewed_than_high_alpha() {
        let mut rng = rng_from_seed(5);
        let skewed =
            PartitionStrategy::Dirichlet { alpha: 0.05 }.class_counts(20, 10, 100, &mut rng);
        let flat = PartitionStrategy::Dirichlet { alpha: 50.0 }.class_counts(20, 10, 100, &mut rng);
        let avg_max = |cs: &[Vec<usize>]| {
            cs.iter()
                .map(|c| *c.iter().max().unwrap() as f64 / 100.0)
                .sum::<f64>()
                / cs.len() as f64
        };
        assert!(avg_max(&skewed) > avg_max(&flat) + 0.1);
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(PartitionStrategy::Iid.label(), "iid");
        assert_eq!(
            PartitionStrategy::Pathological {
                classes_per_client: 2
            }
            .label(),
            "pathological(2)"
        );
        assert!(PartitionStrategy::Dirichlet { alpha: 0.3 }
            .label()
            .starts_with("dirichlet"));
    }

    #[test]
    fn proportional_counts_exact_total() {
        let counts = proportional_counts(10, &[0.33, 0.33, 0.34]);
        assert_eq!(counts.iter().sum::<usize>(), 10);
    }
}
