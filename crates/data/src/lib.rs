//! Synthetic federated datasets for the FedLPS reproduction.
//!
//! The paper evaluates on MNIST, CIFAR-10/100, Tiny-ImageNet and the LEAF
//! Reddit corpus. Those assets are not available in this offline
//! reproduction, so this crate generates *synthetic equivalents* whose
//! statistical structure exercises the same code paths (see `DESIGN.md §1`):
//!
//! * [`synth_vision`] — Gaussian class-prototype image-like datasets with a
//!   configurable number of classes and feature dimensionality;
//! * [`synth_text`] — per-client Markov language sources for the next-token
//!   prediction task (the Reddit substitute);
//! * [`partition`] — IID, pathological (`p` classes per client, the paper's
//!   default) and Dirichlet label-skew partitioners;
//! * [`scenario`] — named dataset scenarios mirroring the paper's five
//!   benchmarks at laptop scale.

pub mod dataset;
pub mod partition;
pub mod scenario;
pub mod synth_text;
pub mod synth_vision;

pub use dataset::{ClientData, Dataset, FederatedDataset, InputKind};
pub use partition::PartitionStrategy;
pub use scenario::{DatasetKind, ScenarioConfig};
