//! Core dataset containers shared by every crate in the workspace.

use fedlps_tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the rows of a [`Dataset`] feature matrix should be interpreted by a
/// model architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputKind {
    /// Plain feature vectors of the given dimensionality.
    Vector { dim: usize },
    /// Channel-major images flattened to `channels * height * width` floats.
    Image {
        channels: usize,
        height: usize,
        width: usize,
    },
    /// Token-id sequences of fixed length over a vocabulary; each feature is a
    /// token id stored as `f32` (the LSTM model re-interprets it as an index).
    Sequence { len: usize, vocab: usize },
}

impl InputKind {
    /// Number of `f32` features per sample.
    pub fn feature_dim(&self) -> usize {
        match *self {
            InputKind::Vector { dim } => dim,
            InputKind::Image {
                channels,
                height,
                width,
            } => channels * height * width,
            InputKind::Sequence { len, .. } => len,
        }
    }
}

/// A supervised dataset: one feature row per sample plus an integer label.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// `n x d` feature matrix.
    pub features: Matrix,
    /// `n` class labels in `0..num_classes`.
    pub labels: Vec<usize>,
    /// Number of distinct classes for the task.
    pub num_classes: usize,
    /// Interpretation of the feature rows.
    pub input: InputKind,
}

impl Dataset {
    /// Creates a dataset, validating basic shape invariants.
    pub fn new(features: Matrix, labels: Vec<usize>, num_classes: usize, input: InputKind) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "feature rows must match label count"
        );
        assert_eq!(
            features.cols(),
            input.feature_dim(),
            "feature dim must match input kind"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "labels must be < num_classes"
        );
        Self {
            features,
            labels,
            num_classes,
            input,
        }
    }

    /// Empty dataset with the given shape metadata.
    pub fn empty(num_classes: usize, input: InputKind) -> Self {
        Self {
            features: Matrix::zeros(0, input.feature_dim()),
            labels: Vec::new(),
            num_classes,
            input,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Returns the feature row for sample `i`.
    pub fn sample(&self, i: usize) -> (&[f32], usize) {
        (self.features.row(i), self.labels[i])
    }

    /// Builds a new dataset from the given sample indices (rows are copied).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut features = Matrix::zeros(indices.len(), self.feature_dim());
        let mut labels = Vec::with_capacity(indices.len());
        for (row, &idx) in indices.iter().enumerate() {
            features
                .row_mut(row)
                .copy_from_slice(self.features.row(idx));
            labels.push(self.labels[idx]);
        }
        Dataset {
            features,
            labels,
            num_classes: self.num_classes,
            input: self.input,
        }
    }

    /// Splits the dataset into `(train, test)` with the given train fraction,
    /// preserving sample order (callers shuffle beforehand when needed).
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_fraction));
        let n_train = ((self.len() as f64) * train_fraction).round() as usize;
        let n_train = n_train.min(self.len());
        let train_idx: Vec<usize> = (0..n_train).collect();
        let test_idx: Vec<usize> = (n_train..self.len()).collect();
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Draws a minibatch of `batch_size` sample indices uniformly at random
    /// (with replacement when `batch_size > len`), returning copied rows.
    pub fn sample_batch(&self, batch_size: usize, rng: &mut impl Rng) -> Dataset {
        assert!(
            !self.is_empty(),
            "cannot sample a batch from an empty dataset"
        );
        let indices: Vec<usize> = (0..batch_size)
            .map(|_| rng.gen_range(0..self.len()))
            .collect();
        self.subset(&indices)
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }

    /// Number of classes that actually appear in the dataset.
    pub fn present_classes(&self) -> usize {
        self.class_histogram().iter().filter(|&&c| c > 0).count()
    }

    /// Concatenates two datasets with identical metadata.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.num_classes, other.num_classes);
        assert_eq!(self.input, other.input);
        let mut features = Matrix::zeros(self.len() + other.len(), self.feature_dim());
        for i in 0..self.len() {
            features.row_mut(i).copy_from_slice(self.features.row(i));
        }
        for i in 0..other.len() {
            features
                .row_mut(self.len() + i)
                .copy_from_slice(other.features.row(i));
        }
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Dataset {
            features,
            labels,
            num_classes: self.num_classes,
            input: self.input,
        }
    }
}

/// One client's local data: a train split used for local updates and a test
/// split used for the personalized accuracy metric the paper reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClientData {
    pub train: Dataset,
    pub test: Dataset,
}

impl ClientData {
    /// Total number of local samples (train + test).
    pub fn len(&self) -> usize {
        self.train.len() + self.test.len()
    }

    /// Whether the client holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the training split (the `|D_k|` aggregation weight).
    pub fn train_size(&self) -> usize {
        self.train.len()
    }
}

/// The full federation: one [`ClientData`] per edge device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FederatedDataset {
    /// Human-readable scenario name (e.g. `"mnist-like"`).
    pub name: String,
    /// Per-client data shards.
    pub clients: Vec<ClientData>,
    /// Number of classes in the global task.
    pub num_classes: usize,
    /// Input interpretation shared by all clients.
    pub input: InputKind,
}

impl FederatedDataset {
    /// Number of participating clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// Training-set sizes of every client (the FedAvg aggregation weights).
    pub fn train_sizes(&self) -> Vec<usize> {
        self.clients.iter().map(|c| c.train_size()).collect()
    }

    /// Total number of training samples across the federation.
    pub fn total_train_samples(&self) -> usize {
        self.train_sizes().iter().sum()
    }

    /// Pools every client's *test* data into one dataset — used by baselines
    /// that deploy a single shared global model.
    pub fn pooled_test(&self) -> Dataset {
        let mut pooled = Dataset::empty(self.num_classes, self.input);
        for c in &self.clients {
            if !c.test.is_empty() {
                pooled = if pooled.is_empty() {
                    c.test.clone()
                } else {
                    pooled.concat(&c.test)
                };
            }
        }
        pooled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_tensor::rng_from_seed;

    fn toy() -> Dataset {
        let features = Matrix::from_fn(6, 3, |r, c| (r * 3 + c) as f32);
        let labels = vec![0, 1, 2, 0, 1, 2];
        Dataset::new(features, labels, 3, InputKind::Vector { dim: 3 })
    }

    #[test]
    fn subset_copies_rows() {
        let d = toy();
        let s = d.subset(&[1, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![1, 0]);
        assert_eq!(s.features.row(0), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy();
        let (train, test) = d.split(0.5);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(train.len(), 3);
    }

    #[test]
    fn class_histogram_counts() {
        let d = toy();
        assert_eq!(d.class_histogram(), vec![2, 2, 2]);
        assert_eq!(d.present_classes(), 3);
    }

    #[test]
    fn sample_batch_has_requested_size() {
        let d = toy();
        let mut rng = rng_from_seed(1);
        let b = d.sample_batch(10, &mut rng);
        assert_eq!(b.len(), 10);
        assert!(b.labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn concat_appends() {
        let d = toy();
        let c = d.concat(&d);
        assert_eq!(c.len(), 12);
        assert_eq!(c.features.row(6), d.features.row(0));
    }

    #[test]
    #[should_panic]
    fn label_out_of_range_panics() {
        let features = Matrix::zeros(1, 2);
        Dataset::new(features, vec![5], 3, InputKind::Vector { dim: 2 });
    }

    #[test]
    fn federated_metadata() {
        let d = toy();
        let (train, test) = d.split(0.67);
        let fed = FederatedDataset {
            name: "toy".into(),
            clients: vec![
                ClientData {
                    train: train.clone(),
                    test: test.clone(),
                },
                ClientData { train, test },
            ],
            num_classes: 3,
            input: InputKind::Vector { dim: 3 },
        };
        assert_eq!(fed.num_clients(), 2);
        assert_eq!(fed.total_train_samples(), 8);
        assert_eq!(fed.pooled_test().len(), 4);
    }

    #[test]
    fn input_kind_dims() {
        assert_eq!(InputKind::Vector { dim: 7 }.feature_dim(), 7);
        assert_eq!(
            InputKind::Image {
                channels: 3,
                height: 8,
                width: 8
            }
            .feature_dim(),
            192
        );
        assert_eq!(InputKind::Sequence { len: 10, vocab: 50 }.feature_dim(), 10);
    }
}
