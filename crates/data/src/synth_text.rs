//! Synthetic next-token-prediction data (the Reddit / LEAF substitute).
//!
//! Each client owns a Markov language source: a shared global transition
//! matrix blended with a client-specific perturbation, mimicking the paper's
//! observation that Reddit users have "different speaking preferences" and the
//! dataset is therefore inherently non-IID. A sample is a window of `len`
//! token ids and its label is the next token.

use fedlps_tensor::{rng_from_seed, split_seed, Matrix};
use rand::Rng;

use crate::dataset::{Dataset, InputKind};

/// Configuration of the synthetic text generator.
#[derive(Debug, Clone)]
pub struct SyntheticTextConfig {
    /// Vocabulary size (also the number of prediction classes).
    pub vocab: usize,
    /// Context window length fed to the language model.
    pub window: usize,
    /// How strongly each client's transition matrix deviates from the global
    /// one, in `[0, 1]`; 0 = IID, 1 = fully client-specific.
    pub client_skew: f64,
    /// Markov-chain temperature: lower values make transitions more peaked
    /// (and the prediction task easier).
    pub concentration: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SyntheticTextConfig {
    fn default() -> Self {
        Self {
            vocab: 24,
            window: 8,
            client_skew: 0.6,
            concentration: 0.25,
            seed: 13,
        }
    }
}

/// Synthetic text generator holding the global transition matrix.
#[derive(Debug, Clone)]
pub struct SyntheticText {
    config: SyntheticTextConfig,
    /// `vocab x vocab` row-stochastic global transition matrix.
    global_transitions: Vec<Vec<f64>>,
}

fn random_stochastic_row(vocab: usize, concentration: f64, rng: &mut impl Rng) -> Vec<f64> {
    // Draw unnormalised Gamma-like weights via -ln(U)^(1/concentration); small
    // concentration produces peaked rows, which keeps next-token prediction
    // learnable by a small LSTM.
    let mut row: Vec<f64> = (0..vocab)
        .map(|_| {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            (-u.ln()).powf(1.0 / concentration.max(1e-3))
        })
        .collect();
    let total: f64 = row.iter().sum();
    for v in &mut row {
        *v /= total;
    }
    row
}

impl SyntheticText {
    /// Builds the global language source from the config seed.
    pub fn new(config: SyntheticTextConfig) -> Self {
        let mut rng = rng_from_seed(config.seed);
        let global_transitions = (0..config.vocab)
            .map(|_| random_stochastic_row(config.vocab, config.concentration, &mut rng))
            .collect();
        Self {
            config,
            global_transitions,
        }
    }

    /// Generator configuration.
    pub fn config(&self) -> &SyntheticTextConfig {
        &self.config
    }

    /// The [`InputKind`] advertised by generated datasets.
    pub fn input_kind(&self) -> InputKind {
        InputKind::Sequence {
            len: self.config.window,
            vocab: self.config.vocab,
        }
    }

    /// Client-specific transition matrix: a convex blend of the global matrix
    /// and a client-private one.
    fn client_transitions(&self, client_id: usize) -> Vec<Vec<f64>> {
        let mut rng = rng_from_seed(split_seed(self.config.seed, 0x7E27 + client_id as u64));
        let skew = self.config.client_skew;
        (0..self.config.vocab)
            .map(|tok| {
                let private =
                    random_stochastic_row(self.config.vocab, self.config.concentration, &mut rng);
                self.global_transitions[tok]
                    .iter()
                    .zip(private.iter())
                    .map(|(g, p)| (1.0 - skew) * g + skew * p)
                    .collect()
            })
            .collect()
    }

    /// Generates `num_samples` context-window/next-token pairs for a client by
    /// rolling out its Markov chain.
    pub fn generate_for_client(&self, client_id: usize, num_samples: usize) -> Dataset {
        let transitions = self.client_transitions(client_id);
        let mut rng = rng_from_seed(split_seed(self.config.seed, 0xBEEF + client_id as u64));
        let window = self.config.window;
        // Roll out one long sequence and slice overlapping windows from it.
        let seq_len = num_samples + window;
        let mut seq = Vec::with_capacity(seq_len);
        let mut token = rng.gen_range(0..self.config.vocab);
        seq.push(token);
        for _ in 1..seq_len {
            token = sample_from_row(&transitions[token], &mut rng);
            seq.push(token);
        }

        let mut features = Matrix::zeros(num_samples, window);
        let mut labels = Vec::with_capacity(num_samples);
        for i in 0..num_samples {
            let row = features.row_mut(i);
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = seq[i + j] as f32;
            }
            labels.push(seq[i + window]);
        }
        Dataset::new(features, labels, self.config.vocab, self.input_kind())
    }
}

fn sample_from_row(row: &[f64], rng: &mut impl Rng) -> usize {
    let mut t = rng.gen::<f64>();
    for (i, &p) in row.iter().enumerate() {
        t -= p;
        if t <= 0.0 {
            return i;
        }
    }
    row.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_samples_with_valid_tokens() {
        let gen = SyntheticText::new(SyntheticTextConfig::default());
        let d = gen.generate_for_client(0, 50);
        assert_eq!(d.len(), 50);
        assert_eq!(d.feature_dim(), gen.config().window);
        assert!(d
            .features
            .as_slice()
            .iter()
            .all(|&t| t >= 0.0 && (t as usize) < gen.config().vocab));
        assert!(d.labels.iter().all(|&l| l < gen.config().vocab));
    }

    #[test]
    fn deterministic_per_client() {
        let gen = SyntheticText::new(SyntheticTextConfig::default());
        let a = gen.generate_for_client(2, 20);
        let b = gen.generate_for_client(2, 20);
        assert_eq!(a.features.as_slice(), b.features.as_slice());
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn clients_have_distinct_token_distributions() {
        let gen = SyntheticText::new(SyntheticTextConfig {
            client_skew: 0.9,
            ..SyntheticTextConfig::default()
        });
        let a = gen.generate_for_client(0, 400);
        let b = gen.generate_for_client(1, 400);
        let hist = |d: &Dataset| {
            let mut h = vec![0.0f64; d.num_classes];
            for &l in &d.labels {
                h[l] += 1.0 / d.labels.len() as f64;
            }
            h
        };
        let ha = hist(&a);
        let hb = hist(&b);
        let tv: f64 = ha
            .iter()
            .zip(hb.iter())
            .map(|(x, y)| (x - y).abs())
            .sum::<f64>()
            / 2.0;
        assert!(
            tv > 0.05,
            "total-variation distance {tv} too small for non-IID text"
        );
    }

    #[test]
    fn transition_rows_are_stochastic() {
        let gen = SyntheticText::new(SyntheticTextConfig::default());
        for row in &gen.global_transitions {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn windows_overlap_consistently() {
        // The i-th label must equal the first token of window i+window? No —
        // but the (i+1)-th window must be the i-th shifted by one token.
        let gen = SyntheticText::new(SyntheticTextConfig::default());
        let d = gen.generate_for_client(5, 30);
        let w = gen.config().window;
        for i in 0..d.len() - 1 {
            let cur = d.features.row(i);
            let next = d.features.row(i + 1);
            assert_eq!(&cur[1..], &next[..w - 1]);
            assert_eq!(next[w - 1] as usize, d.labels[i]);
        }
    }
}
