//! Named dataset scenarios mirroring the paper's five benchmarks.
//!
//! Each [`DatasetKind`] maps one of the paper's datasets to a synthetic
//! analogue whose class count and client partitioning follow the paper's
//! configuration (pathological non-IID with 2/2/10/20 classes per client for
//! the vision tasks, inherently non-IID Markov sources for the text task),
//! scaled down so that a full federation run completes in seconds on a CPU.

use fedlps_tensor::{rng_from_seed, split_seed};
use serde::{Deserialize, Serialize};

use crate::dataset::{ClientData, FederatedDataset};
use crate::partition::PartitionStrategy;
use crate::synth_text::{SyntheticText, SyntheticTextConfig};
use crate::synth_vision::{SyntheticVision, SyntheticVisionConfig};

/// The five benchmark scenarios of the paper's evaluation (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// MNIST analogue: 10 easy classes, single-channel images, CNN/MLP scale.
    MnistLike,
    /// CIFAR-10 analogue: 10 harder classes, 3-channel images.
    Cifar10Like,
    /// CIFAR-100 analogue: many-class task (scaled to 40 classes).
    Cifar100Like,
    /// Tiny-ImageNet analogue: very-many-class task (scaled to 60 classes).
    TinyImagenetLike,
    /// Reddit analogue: next-token prediction over per-client Markov sources.
    RedditLike,
}

impl DatasetKind {
    /// All scenarios in the order the paper reports them.
    pub fn all() -> [DatasetKind; 5] {
        [
            DatasetKind::MnistLike,
            DatasetKind::Cifar10Like,
            DatasetKind::Cifar100Like,
            DatasetKind::TinyImagenetLike,
            DatasetKind::RedditLike,
        ]
    }

    /// Scenario name used in tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::MnistLike => "mnist-like",
            DatasetKind::Cifar10Like => "cifar10-like",
            DatasetKind::Cifar100Like => "cifar100-like",
            DatasetKind::TinyImagenetLike => "tiny-imagenet-like",
            DatasetKind::RedditLike => "reddit-like",
        }
    }

    /// Number of classes in the synthetic analogue.
    pub fn num_classes(&self) -> usize {
        match self {
            DatasetKind::MnistLike | DatasetKind::Cifar10Like => 10,
            DatasetKind::Cifar100Like => 40,
            DatasetKind::TinyImagenetLike => 60,
            DatasetKind::RedditLike => 24,
        }
    }

    /// The paper's pathological classes-per-client setting, mapped onto the
    /// scaled-down class counts (2/2/10/20 in the paper for the vision tasks).
    pub fn default_classes_per_client(&self) -> usize {
        match self {
            DatasetKind::MnistLike | DatasetKind::Cifar10Like => 2,
            DatasetKind::Cifar100Like => 10,
            DatasetKind::TinyImagenetLike => 15,
            DatasetKind::RedditLike => 24, // text: non-IID comes from the source, not label masking
        }
    }

    /// Default number of clients (paper: 100 for MNIST/Reddit, 50 otherwise),
    /// scaled down for the reproduction.
    pub fn default_num_clients(&self) -> usize {
        match self {
            DatasetKind::MnistLike | DatasetKind::RedditLike => 30,
            _ => 20,
        }
    }
}

/// Full configuration of one federated dataset scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Which of the paper's benchmarks this scenario mirrors.
    pub kind: DatasetKind,
    /// Number of clients in the federation.
    pub num_clients: usize,
    /// Training samples per client.
    pub samples_per_client: usize,
    /// Test samples per client.
    pub test_per_client: usize,
    /// How the label space is split across clients (ignored for text, whose
    /// non-IIDness comes from per-client Markov sources).
    pub partition: PartitionStrategy,
    /// Base RNG seed.
    pub seed: u64,
}

impl ScenarioConfig {
    /// A small default configuration for the given dataset kind, matching the
    /// paper's partitioning choices.
    pub fn small(kind: DatasetKind) -> Self {
        Self {
            kind,
            num_clients: kind.default_num_clients(),
            samples_per_client: 120,
            test_per_client: 40,
            partition: PartitionStrategy::Pathological {
                classes_per_client: kind.default_classes_per_client(),
            },
            seed: 42,
        }
    }

    /// An even smaller configuration for unit/integration tests.
    pub fn tiny(kind: DatasetKind) -> Self {
        Self {
            kind,
            num_clients: 8,
            samples_per_client: 40,
            test_per_client: 16,
            partition: PartitionStrategy::Pathological {
                classes_per_client: kind.default_classes_per_client().min(kind.num_classes()),
            },
            seed: 42,
        }
    }

    /// Overrides the number of clients.
    pub fn with_clients(mut self, n: usize) -> Self {
        self.num_clients = n;
        self
    }

    /// Overrides the partition strategy (used by the Figure 6 non-IID sweep).
    pub fn with_partition(mut self, partition: PartitionStrategy) -> Self {
        self.partition = partition;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the federated dataset.
    pub fn build(&self) -> FederatedDataset {
        match self.kind {
            DatasetKind::RedditLike => self.build_text(),
            _ => self.build_vision(),
        }
    }

    fn vision_config(&self) -> SyntheticVisionConfig {
        // Difficulty knobs are tuned so the *global* 10-to-60-way problem is
        // genuinely hard under label skew (FedAvg-style shared models plateau
        // well below 100%) while each client's few-class personalized problem
        // stays learnable — the regime the paper's evaluation lives in.
        let (channels, height, width, prototype_scale, noise) = match self.kind {
            DatasetKind::MnistLike => (1, 6, 6, 1.2, 1.5),
            DatasetKind::Cifar10Like => (3, 6, 6, 0.9, 1.4),
            DatasetKind::Cifar100Like => (3, 6, 6, 1.1, 1.3),
            DatasetKind::TinyImagenetLike => (3, 7, 7, 1.1, 1.4),
            DatasetKind::RedditLike => unreachable!("text scenario"),
        };
        SyntheticVisionConfig {
            num_classes: self.kind.num_classes(),
            channels,
            height,
            width,
            prototype_scale,
            noise,
            client_shift: 0.7,
            seed: split_seed(self.seed, 0xDA7A),
        }
    }

    fn build_vision(&self) -> FederatedDataset {
        let gen = SyntheticVision::new(self.vision_config());
        let num_classes = self.kind.num_classes();
        let mut rng = rng_from_seed(split_seed(self.seed, 0x9A57));
        let train_counts = self.partition.class_counts(
            self.num_clients,
            num_classes,
            self.samples_per_client,
            &mut rng,
        );

        let clients = (0..self.num_clients)
            .map(|k| {
                // The client's test data follows the *same* local distribution
                // as its training data (personalized evaluation, as in the
                // paper): scale the train counts down to the test budget.
                let train = gen.generate_for_client(k, &train_counts[k]);
                let test_counts = scale_counts(&train_counts[k], self.test_per_client);
                let test = {
                    // Use a distinct client-id offset so test features are not
                    // literal copies of training features.
                    gen.generate_for_client(k + 10_000, &test_counts)
                };
                ClientData { train, test }
            })
            .collect();

        FederatedDataset {
            name: self.kind.name().to_string(),
            clients,
            num_classes,
            input: gen.config().input_kind(),
        }
    }

    fn build_text(&self) -> FederatedDataset {
        let config = SyntheticTextConfig {
            vocab: self.kind.num_classes(),
            window: 8,
            client_skew: 0.6,
            concentration: 0.25,
            seed: split_seed(self.seed, 0x7E41),
        };
        let gen = SyntheticText::new(config);
        let clients = (0..self.num_clients)
            .map(|k| {
                let all =
                    gen.generate_for_client(k, self.samples_per_client + self.test_per_client);
                let (train, test) = all.split(
                    self.samples_per_client as f64
                        / (self.samples_per_client + self.test_per_client) as f64,
                );
                ClientData { train, test }
            })
            .collect();
        FederatedDataset {
            name: self.kind.name().to_string(),
            clients,
            num_classes: self.kind.num_classes(),
            input: gen.input_kind(),
        }
    }
}

/// Scales a count vector so it sums to `target` while keeping zero entries zero.
fn scale_counts(counts: &[usize], target: usize) -> Vec<usize> {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return vec![0; counts.len()];
    }
    let mut scaled: Vec<usize> = counts
        .iter()
        .map(|&c| ((c as f64 / total as f64) * target as f64).floor() as usize)
        .collect();
    let mut assigned: usize = scaled.iter().sum();
    let mut i = 0;
    while assigned < target {
        let idx = i % counts.len();
        if counts[idx] > 0 {
            scaled[idx] += 1;
            assigned += 1;
        }
        i += 1;
    }
    scaled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::InputKind;

    #[test]
    fn vision_scenario_shapes() {
        let cfg = ScenarioConfig::tiny(DatasetKind::MnistLike);
        let fed = cfg.build();
        assert_eq!(fed.num_clients(), 8);
        assert_eq!(fed.num_classes, 10);
        for c in &fed.clients {
            assert_eq!(c.train.len(), 40);
            assert_eq!(c.test.len(), 16);
            assert!(c.train.present_classes() <= 2);
        }
        assert!(matches!(fed.input, InputKind::Image { .. }));
    }

    #[test]
    fn text_scenario_shapes() {
        let cfg = ScenarioConfig::tiny(DatasetKind::RedditLike);
        let fed = cfg.build();
        assert_eq!(fed.num_clients(), 8);
        assert_eq!(fed.num_classes, 24);
        for c in &fed.clients {
            assert_eq!(c.train.len() + c.test.len(), 56);
        }
        assert!(matches!(fed.input, InputKind::Sequence { .. }));
    }

    #[test]
    fn many_class_scenarios_have_expected_counts() {
        assert_eq!(DatasetKind::Cifar100Like.num_classes(), 40);
        assert_eq!(DatasetKind::TinyImagenetLike.num_classes(), 60);
        let cfg = ScenarioConfig::tiny(DatasetKind::Cifar100Like);
        let fed = cfg.build();
        for c in &fed.clients {
            assert!(c.train.present_classes() <= 10);
        }
    }

    #[test]
    fn test_split_matches_local_distribution() {
        let cfg = ScenarioConfig::tiny(DatasetKind::MnistLike);
        let fed = cfg.build();
        for c in &fed.clients {
            let train_classes: Vec<usize> = c
                .train
                .class_histogram()
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, _)| i)
                .collect();
            for (class, &n) in c.test.class_histogram().iter().enumerate() {
                if n > 0 {
                    assert!(
                        train_classes.contains(&class),
                        "test class {class} absent from training distribution"
                    );
                }
            }
        }
    }

    #[test]
    fn seeds_change_data_deterministically() {
        let a = ScenarioConfig::tiny(DatasetKind::MnistLike).build();
        let b = ScenarioConfig::tiny(DatasetKind::MnistLike).build();
        let c = ScenarioConfig::tiny(DatasetKind::MnistLike)
            .with_seed(7)
            .build();
        assert_eq!(
            a.clients[0].train.features.as_slice(),
            b.clients[0].train.features.as_slice()
        );
        assert_ne!(
            a.clients[0].train.features.as_slice(),
            c.clients[0].train.features.as_slice()
        );
    }

    #[test]
    fn scale_counts_preserves_support_and_total() {
        let scaled = scale_counts(&[10, 0, 30], 8);
        assert_eq!(scaled.iter().sum::<usize>(), 8);
        assert_eq!(scaled[1], 0);
    }

    #[test]
    fn all_kinds_build() {
        for kind in DatasetKind::all() {
            let fed = ScenarioConfig::tiny(kind).build();
            assert!(fed.num_clients() > 0, "{}", kind.name());
        }
    }
}
