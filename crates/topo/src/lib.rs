//! Aggregation topology: *where* client updates meet the server, made a
//! first-class layer alongside selection, execution and absorption.
//!
//! Two faces of one abstraction:
//!
//! * [`MergePlan`] — the **deterministic merge tree**. Eq. (13) aggregation
//!   is a serial walk over the staged updates in ascending client-id order;
//!   floating-point addition is not associative, so sharding that walk on
//!   the *client* axis would change bits with the shard count. The plan
//!   therefore shards on the **coordinate** axis instead: the parameter
//!   vector is split into contiguous disjoint ranges, each leaf replays the
//!   full ascending-client walk restricted to its range (the per-coordinate
//!   operation sequence is untouched), and parent nodes combine children
//!   pairwise in a fixed order by range concatenation — which is *exact*.
//!   The result is bit-identical to the serial walk at every shard count,
//!   so the shard count can follow the configured parallelism without
//!   entering the determinism contract.
//! * [`Topology`] — the **physical topology**. [`Topology::Flat`] is the
//!   status quo (clients upload straight to the server; bit-identical
//!   default), while [`Topology::TwoTier`] inserts a zone/edge-aggregator
//!   tier (hierarchical FedAvg): clients map to zones by a seeded
//!   assignment, each zone pre-merges its cohort's residuals and forwards
//!   one combined upload priced by the zone-level uplink bandwidth in the
//!   Eq. (14) cost model, optionally dropping intra-zone stragglers at a
//!   per-zone deadline. The two-tier fabric changes *timing, traffic and
//!   drops* — never the absorbed arithmetic, which stays the canonical
//!   ascending walk — so two-tier traces remain bit-identical across
//!   backends and parallelism levels.
//!
//! ```
//! use fedlps_topo::{MergePlan, Topology};
//!
//! // Merge tree: each leaf computes its coordinate range, the fixed-shape
//! // pairwise combine reassembles the full vector exactly.
//! let plan = MergePlan::new(10, 3);
//! let leaves: Vec<Vec<f32>> = (0..plan.shards())
//!     .map(|s| plan.range(s).map(|i| (i * i) as f32).collect())
//!     .collect();
//! let merged = plan.combine(leaves);
//! assert_eq!(merged, (0..10).map(|i| (i * i) as f32).collect::<Vec<_>>());
//!
//! // Physical topology: the quickstart knob's two names.
//! assert_eq!(Topology::from_name("flat"), Some(Topology::Flat));
//! let two_tier = Topology::from_name("two-tier").unwrap();
//! assert_eq!(two_tier.zone_of(7, 0), Some(two_tier.zone_of(7, 0).unwrap()));
//! assert_eq!(Topology::Flat.zone_of(7, 0), None);
//! ```

use std::ops::Range;

use fedlps_device::fleet::zone_assignment;
use serde::{Deserialize, Serialize};

/// Default zone count of [`Topology::two_tier`].
pub const DEFAULT_ZONES: usize = 4;
/// Default zone-aggregator uplink factor (× the reference device uplink):
/// edge aggregators sit on provisioned links, not cellular radios.
pub const DEFAULT_ZONE_UPLINK: f64 = 4.0;

/// The fixed-shape coordinate-axis merge tree.
///
/// Built from `(len, shards)` alone, so every run with the same
/// configuration produces the same tree regardless of thread schedule. The
/// shard count is clamped to `1..=len` (an empty vector keeps one empty
/// shard so the tree always has a root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergePlan {
    len: usize,
    /// `shards + 1` ascending boundaries; leaf `s` owns
    /// `bounds[s]..bounds[s + 1]`.
    bounds: Vec<usize>,
}

impl MergePlan {
    /// Plans `shards` contiguous coordinate ranges over a `len`-vector, the
    /// first `len % shards` leaves one coordinate wider.
    pub fn new(len: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, len.max(1));
        let (base, rem) = (len / shards, len % shards);
        let mut bounds = Vec::with_capacity(shards + 1);
        let mut at = 0;
        bounds.push(at);
        for s in 0..shards {
            at += base + usize::from(s < rem);
            bounds.push(at);
        }
        debug_assert_eq!(at, len);
        Self { len, bounds }
    }

    /// Total vector length the plan covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plan covers an empty vector.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of leaves (after clamping).
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Coordinate range owned by leaf `shard`.
    pub fn range(&self, shard: usize) -> Range<usize> {
        self.bounds[shard]..self.bounds[shard + 1]
    }

    /// Combines the per-leaf segments pairwise up the fixed-shape binary
    /// tree into the full vector. Each internal node concatenates its two
    /// children's contiguous ranges — an exact operation, so the combine
    /// order affects nothing but is fixed anyway: level by level, left to
    /// right, an odd tail promoted unchanged.
    ///
    /// Panics if the segment count or any segment length disagrees with the
    /// plan — a leaf that computed the wrong range must not merge silently.
    pub fn combine(&self, segments: Vec<Vec<f32>>) -> Vec<f32> {
        assert_eq!(
            segments.len(),
            self.shards(),
            "segment count must match the plan's leaf count"
        );
        for (s, seg) in segments.iter().enumerate() {
            assert_eq!(
                seg.len(),
                self.range(s).len(),
                "segment {s} does not cover its planned coordinate range"
            );
        }
        let mut level = segments;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut nodes = level.into_iter();
            while let Some(mut left) = nodes.next() {
                if let Some(right) = nodes.next() {
                    left.extend_from_slice(&right);
                }
                next.push(left);
            }
            level = next;
        }
        level.pop().unwrap_or_default()
    }
}

/// The physical aggregation topology of a run.
///
/// Part of the run configuration (`FlConfig::topology`), so it is `Copy`
/// and serde-round-trippable like every other knob. [`Topology::Flat`]
/// reproduces the historical traces byte for byte; [`Topology::TwoTier`]
/// overlays the zone tier's timing, traffic and drops on the same absorbed
/// arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Topology {
    /// Clients upload straight to the server (the bit-identical default).
    #[default]
    Flat,
    /// Hierarchical FedAvg: clients → zone aggregators → server.
    TwoTier {
        /// Number of zone aggregators (≥ 1); clients map to zones by a
        /// seeded assignment.
        zones: usize,
        /// Optional round-relative deadline at each zone aggregator: a
        /// cohort-mode upload landing at its zone after this instant is
        /// dropped there (a *zone* straggler). `None` = zones wait.
        zone_deadline: Option<f64>,
        /// Zone-aggregator uplink bandwidth as a multiple of the reference
        /// device uplink; prices the combined zone→server upload in Eq. 14.
        zone_uplink: f64,
    },
}

impl Topology {
    /// A two-tier topology with the default zone count, uplink factor and
    /// no zone deadline.
    pub fn two_tier() -> Self {
        Topology::TwoTier {
            zones: DEFAULT_ZONES,
            zone_deadline: None,
            zone_uplink: DEFAULT_ZONE_UPLINK,
        }
    }

    /// Parses the `FEDLPS_TOPOLOGY` knob (`"flat"` / `"two-tier"`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "flat" => Some(Topology::Flat),
            "two-tier" | "two_tier" | "twotier" => Some(Topology::two_tier()),
            _ => None,
        }
    }

    /// The knob name of this topology.
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Flat => "flat",
            Topology::TwoTier { .. } => "two-tier",
        }
    }

    /// Number of zones (1 under [`Topology::Flat`]: the server is the only
    /// aggregation point).
    pub fn zones(&self) -> usize {
        match self {
            Topology::Flat => 1,
            Topology::TwoTier { zones, .. } => *zones,
        }
    }

    /// Replaces the zone count (panics on [`Topology::Flat`] — a flat
    /// topology has no zone tier to configure).
    pub fn with_zones(self, n: usize) -> Self {
        assert!(n >= 1, "a two-tier topology needs at least one zone");
        match self {
            Topology::TwoTier {
                zone_deadline,
                zone_uplink,
                ..
            } => Topology::TwoTier {
                zones: n,
                zone_deadline,
                zone_uplink,
            },
            Topology::Flat => panic!("Topology::Flat has no zones to configure"),
        }
    }

    /// Sets the per-zone deadline (panics on [`Topology::Flat`]).
    pub fn with_zone_deadline(self, deadline: f64) -> Self {
        assert!(deadline > 0.0, "a zone deadline must be positive");
        match self {
            Topology::TwoTier {
                zones, zone_uplink, ..
            } => Topology::TwoTier {
                zones,
                zone_deadline: Some(deadline),
                zone_uplink,
            },
            Topology::Flat => panic!("Topology::Flat has no zone deadline"),
        }
    }

    /// Sets the zone uplink factor (panics on [`Topology::Flat`]).
    pub fn with_zone_uplink(self, uplink: f64) -> Self {
        assert!(uplink > 0.0, "the zone uplink factor must be positive");
        match self {
            Topology::TwoTier {
                zones,
                zone_deadline,
                ..
            } => Topology::TwoTier {
                zones,
                zone_deadline,
                zone_uplink: uplink,
            },
            Topology::Flat => panic!("Topology::Flat has no zone uplink"),
        }
    }

    /// Seeded client → zone assignment (`None` under [`Topology::Flat`]).
    /// A pure O(1) function of `(seed, client)`, so population-scale fleets
    /// never materialize an assignment vector.
    pub fn zone_of(&self, seed: u64, client: usize) -> Option<usize> {
        match self {
            Topology::Flat => None,
            Topology::TwoTier { zones, .. } => Some(zone_assignment(seed, client, *zones)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plan_covers_the_vector_with_disjoint_contiguous_ranges() {
        for (len, shards) in [(10, 3), (7, 7), (7, 20), (1, 1), (16, 4), (5, 2)] {
            let plan = MergePlan::new(len, shards);
            assert!(plan.shards() <= shards.max(1));
            let mut at = 0;
            for s in 0..plan.shards() {
                let r = plan.range(s);
                assert_eq!(r.start, at, "ranges must be contiguous");
                assert!(!r.is_empty(), "no leaf may own an empty range");
                at = r.end;
            }
            assert_eq!(at, len);
        }
    }

    #[test]
    fn zero_length_plan_has_one_empty_leaf() {
        let plan = MergePlan::new(0, 8);
        assert!(plan.is_empty());
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.range(0), 0..0);
        assert_eq!(plan.combine(vec![vec![]]), Vec::<f32>::new());
    }

    #[test]
    fn combine_reassembles_exactly() {
        let plan = MergePlan::new(11, 4);
        let truth: Vec<f32> = (0..11).map(|i| i as f32 * 0.1).collect();
        let segs = (0..plan.shards())
            .map(|s| truth[plan.range(s)].to_vec())
            .collect();
        assert_eq!(plan.combine(segs), truth);
    }

    #[test]
    #[should_panic(expected = "does not cover its planned coordinate range")]
    fn combine_rejects_misshapen_segments() {
        let plan = MergePlan::new(8, 2);
        plan.combine(vec![vec![0.0; 3], vec![0.0; 5]]);
    }

    #[test]
    fn topology_knob_names_round_trip() {
        for name in ["flat", "two-tier"] {
            let topo = Topology::from_name(name).unwrap();
            assert_eq!(topo.name(), name);
        }
        assert_eq!(Topology::from_name("mesh"), None);
        assert_eq!(Topology::default(), Topology::Flat);
    }

    #[test]
    fn two_tier_builders_compose() {
        let topo = Topology::two_tier()
            .with_zones(8)
            .with_zone_deadline(0.5)
            .with_zone_uplink(2.0);
        assert_eq!(
            topo,
            Topology::TwoTier {
                zones: 8,
                zone_deadline: Some(0.5),
                zone_uplink: 2.0,
            }
        );
        assert_eq!(topo.zones(), 8);
    }

    #[test]
    fn zone_assignment_is_seed_stable_and_in_range() {
        let topo = Topology::two_tier().with_zones(5);
        for client in 0..200 {
            let z = topo.zone_of(7, client).unwrap();
            assert!(z < 5);
            assert_eq!(topo.zone_of(7, client), Some(z), "assignment is stable");
        }
        // A different seed reshuffles at least one client.
        assert!((0..200).any(|c| topo.zone_of(7, c) != topo.zone_of(8, c)));
        assert_eq!(Topology::Flat.zone_of(7, 3), None);
    }

    proptest! {
        /// The tree is shape-stable: any shard count reassembles any vector
        /// exactly (concatenation is exact, so this is equality, not
        /// approximation).
        #[test]
        fn combine_is_exact_at_every_shard_count(
            len in 0usize..200,
            shards in 1usize..32,
            seed in 1u32..1_000_000,
        ) {
            let truth: Vec<f32> = (0..len)
                .map(|i| ((i as u32).wrapping_mul(seed) as f32).sin())
                .collect();
            let plan = MergePlan::new(len, shards);
            let segs = (0..plan.shards())
                .map(|s| truth[plan.range(s)].to_vec())
                .collect();
            prop_assert_eq!(plan.combine(segs), truth);
        }
    }
}
