//! Deterministic fault injection for the FedLPS simulator.
//!
//! The only failure the seed simulator could express was an i.i.d. coin
//! flip per dispatch ([`DynamicsConfig::offline_prob`]). REFL's core
//! observation — the reason availability-aware selection exists at all —
//! is that real cross-device availability is *correlated*: devices charge
//! at night in timezone waves, and infrastructure outages take whole
//! regions offline at once. This crate supplies the deterministic fault
//! vocabulary the driver replays through its event queue:
//!
//! * [`AvailabilityModel`] — the seam replacing the bare coin flip.
//!   [`Iid`](AvailabilityModel::Iid) delegates to the historical
//!   [`DeviceFleet::offline_churn`] semantics bit for bit (and is the
//!   default), [`Diurnal`](AvailabilityModel::Diurnal) gives every client
//!   a seeded phase over a shared day/night period, and
//!   [`Burst`](AvailabilityModel::Burst) takes whole seeded zones (the
//!   same [`zone_assignment`] the two-tier topology uses) offline in
//!   correlated outage windows.
//! * [`FaultConfig`] / [`FaultInjector`] — transient upload failures. Each
//!   attempt's fate is a pure seeded function of
//!   `(seed, client, tick, attempt)`, so retry schedules replay
//!   bit-identically at every parallelism/backend/topology setting.
//! * [`FaultPlan`] — the closed-form outcome of one upload under the
//!   injector (how many failures, whether it was ultimately delivered, and
//!   the total backoff it paid), used by tests to cross-check the driver's
//!   incremental event replay against the pure function.
//!
//! Everything here is a pure function of the run seed: no wall clocks, no
//! shared state, no thread-schedule dependence.
//!
//! [`DynamicsConfig::offline_prob`]: fedlps_device::fleet::DynamicsConfig::offline_prob
//! [`DeviceFleet::offline_churn`]: fedlps_device::DeviceFleet::offline_churn

use fedlps_device::fleet::zone_assignment;
use fedlps_tensor::rng::{rng_from_seed, split_seed};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// RNG stream of the per-client diurnal phase (disjoint from every fleet
/// and driver stream).
const STREAM_PHASE: u64 = 0xD1F0A5;
/// RNG stream of the per-window burst-outage draw (which zone, when).
const STREAM_BURST: u64 = 0xB00057;
/// RNG stream of transient upload-attempt faults.
const STREAM_UPLOAD_FAULT: u64 = 0xFA017;

/// When (and how correlatedly) clients are unavailable.
///
/// The driver consults the model once per dispatch, at the dispatch's
/// absolute virtual time. `Iid` reproduces the historical mid-round churn
/// coin flip; the correlated models instead answer "offline until when?" —
/// the device waits out its unavailability window before computing, so a
/// synchronous barrier genuinely stalls on a night wave while deadline /
/// async / quorum configurations degrade gracefully around it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AvailabilityModel {
    /// The historical semantics, bit for bit: an i.i.d. per-dispatch coin
    /// flip from [`DeviceFleet::offline_churn`], observed only by the
    /// event-driven round modes (a synchronous server waits churn out).
    ///
    /// [`DeviceFleet::offline_churn`]: fedlps_device::DeviceFleet::offline_churn
    #[default]
    Iid,
    /// Day/night waves: client `k` is offline whenever
    /// `(t + phase_k) mod period` falls in the first `night_offline`
    /// fraction of the period, with `phase_k` a seeded per-client offset
    /// uniform in `[0, phase_spread × period)`. `phase_spread = 0` puts the
    /// whole fleet in one timezone (fully correlated nights); `1` spreads
    /// phases over the full period (a rolling wave).
    Diurnal {
        /// Length of one virtual day, in simulated seconds (> 0).
        period: f64,
        /// Fraction of the period the per-client phases spread over
        /// (`[0, 1]`).
        phase_spread: f64,
        /// Fraction of each period a client spends offline (`[0, 1)`).
        night_offline: f64,
    },
    /// Correlated burst outages: virtual time is cut into windows of
    /// `every` seconds; each window draws (seeded) one of `zones` zones and
    /// an outage start, and every client assigned to that zone (by the same
    /// seeded [`zone_assignment`] the two-tier topology uses) is offline
    /// for `outage` seconds. With the topology's zone count this takes
    /// whole `TwoTier` zones offline at once.
    Burst {
        /// Number of zones the fleet partitions into (≥ 1). Use the
        /// two-tier topology's zone count to align outages with
        /// aggregator zones.
        zones: usize,
        /// Window length: one zone-wide outage strikes per window (> 0).
        every: f64,
        /// Outage length in seconds (`0 < outage ≤ every`).
        outage: f64,
    },
}

impl AvailabilityModel {
    /// Short name used by logs and the `FEDLPS_AVAILABILITY` env knob.
    pub fn name(&self) -> &'static str {
        match self {
            AvailabilityModel::Iid => "iid",
            AvailabilityModel::Diurnal { .. } => "diurnal",
            AvailabilityModel::Burst { .. } => "burst",
        }
    }

    /// Resolves a knob name to its canonical parameterization — the
    /// demo/CI presets sized for quickstart-scale latencies (round spans of
    /// a few milliseconds of virtual time). Custom parameters are
    /// constructed directly. Returns `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "iid" => Some(AvailabilityModel::Iid),
            "diurnal" => Some(AvailabilityModel::Diurnal {
                period: 0.02,
                phase_spread: 1.0,
                night_offline: 0.4,
            }),
            "burst" => Some(AvailabilityModel::Burst {
                zones: 4,
                every: 0.02,
                outage: 0.008,
            }),
            _ => None,
        }
    }

    /// If `client` is unavailable at virtual time `now`, the absolute time
    /// its current offline window ends; `None` when it is available.
    ///
    /// A pure function of `(model, seed, client, now)`. `Iid` always
    /// returns `None`: its churn is a per-dispatch coin flip the driver
    /// draws from the fleet, not a time window.
    pub fn offline_until(&self, seed: u64, client: usize, now: f64) -> Option<f64> {
        match *self {
            AvailabilityModel::Iid => None,
            AvailabilityModel::Diurnal {
                period,
                phase_spread,
                night_offline,
            } => {
                let mut rng =
                    rng_from_seed(split_seed(split_seed(seed, STREAM_PHASE), client as u64));
                let phase = rng.gen::<f64>() * phase_spread * period;
                let pos = (now + phase).rem_euclid(period);
                let night = night_offline * period;
                (pos < night).then_some(now + (night - pos))
            }
            AvailabilityModel::Burst {
                zones,
                every,
                outage,
            } => {
                let window = (now / every).floor().max(0.0);
                let mut rng =
                    rng_from_seed(split_seed(split_seed(seed, STREAM_BURST), window as u64));
                let hit_zone = rng.gen_range(0..zones);
                let start = window * every + rng.gen::<f64>() * (every - outage);
                let inside = now >= start && now < start + outage;
                (inside && zone_assignment(seed, client, zones) == hit_zone)
                    .then_some(start + outage)
            }
        }
    }

    /// Whether `client` is unavailable at virtual time `now`.
    pub fn is_offline(&self, seed: u64, client: usize, now: f64) -> bool {
        self.offline_until(seed, client, now).is_some()
    }

    /// Checks the model's parameters, returning an actionable message on
    /// the first bad knob.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            AvailabilityModel::Iid => Ok(()),
            AvailabilityModel::Diurnal {
                period,
                phase_spread,
                night_offline,
            } => {
                if !(period.is_finite() && period > 0.0) {
                    return Err(format!(
                        "diurnal period must be finite and > 0, got {period}"
                    ));
                }
                if !(0.0..=1.0).contains(&phase_spread) {
                    return Err(format!(
                        "diurnal phase_spread must be in [0, 1], got {phase_spread}"
                    ));
                }
                if !(0.0..1.0).contains(&night_offline) {
                    return Err(format!(
                        "diurnal night_offline must be in [0, 1) — a fleet offline \
                         all day never uploads — got {night_offline}"
                    ));
                }
                Ok(())
            }
            AvailabilityModel::Burst {
                zones,
                every,
                outage,
            } => {
                if zones < 1 {
                    return Err("burst availability needs at least one zone".to_string());
                }
                if !(every.is_finite() && every > 0.0) {
                    return Err(format!(
                        "burst window length `every` must be finite and > 0, got {every}"
                    ));
                }
                if !(outage.is_finite() && outage > 0.0 && outage <= every) {
                    return Err(format!(
                        "burst outage must satisfy 0 < outage <= every ({every}), got {outage}"
                    ));
                }
                Ok(())
            }
        }
    }
}

/// Transient upload-fault knobs. The default injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability any single upload attempt fails on the wire (`[0, 1)`;
    /// 0 disables fault injection entirely).
    pub upload_failure_prob: f64,
    /// Retransmissions allowed after the initial attempt; once
    /// `max_retries + 1` attempts have failed the update drops permanently.
    pub max_retries: u32,
    /// Backoff before the first retransmission, in simulated seconds
    /// (> 0).
    pub retry_backoff: f64,
    /// Exponential backoff base (> 1): the `r`-th retransmission waits
    /// `retry_backoff × backoff_base^(r-1)` seconds.
    pub backoff_base: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            upload_failure_prob: 0.0,
            max_retries: 3,
            retry_backoff: 0.01,
            backoff_base: 2.0,
        }
    }
}

impl FaultConfig {
    /// No fault injection (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the injector can ever fail an attempt.
    pub fn enabled(&self) -> bool {
        self.upload_failure_prob > 0.0
    }

    /// Checks the knobs, returning an actionable message on the first bad
    /// one. Inert knobs are checked too: a config that would misbehave the
    /// moment `upload_failure_prob` is raised should fail up front.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.upload_failure_prob) {
            return Err(format!(
                "upload_failure_prob must be in [0, 1) — certain failure drops \
                 every update — got {}",
                self.upload_failure_prob
            ));
        }
        if !(self.retry_backoff.is_finite() && self.retry_backoff > 0.0) {
            return Err(format!(
                "retry_backoff must be finite and > 0 seconds, got {}",
                self.retry_backoff
            ));
        }
        if !(self.backoff_base.is_finite() && self.backoff_base > 1.0) {
            return Err(format!(
                "backoff_base must be > 1 (exponential backoff must grow), got {}",
                self.backoff_base
            ));
        }
        Ok(())
    }
}

/// The seeded oracle for transient upload faults.
///
/// Every attempt's fate is an independent pure draw keyed by
/// `(seed, client, tick, attempt)` — `tick` is the driver's scheduling
/// tick (round index for cohort modes, dispatch sequence for async), so
/// one client's retries in different rounds are independent, and nothing
/// depends on event interleaving.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    seed: u64,
    config: FaultConfig,
}

impl FaultInjector {
    /// An injector for one run.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        Self { seed, config }
    }

    /// The configured knobs.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Whether attempt number `attempt` (0 = the initial transmission) of
    /// the upload keyed by `(client, tick)` fails. Always `false` when
    /// fault injection is disabled — no RNG is consumed.
    pub fn upload_attempt_fails(&self, client: usize, tick: u64, attempt: u32) -> bool {
        if !self.config.enabled() {
            return false;
        }
        let per_upload = split_seed(
            split_seed(split_seed(self.seed, STREAM_UPLOAD_FAULT), client as u64),
            tick,
        );
        let mut rng = rng_from_seed(split_seed(per_upload, attempt as u64));
        rng.gen::<f64>() < self.config.upload_failure_prob
    }

    /// Backoff before retransmission `retry` (1-based):
    /// `retry_backoff × backoff_base^(retry-1)`.
    pub fn backoff_delay(&self, retry: u32) -> f64 {
        debug_assert!(retry >= 1, "retransmissions are 1-based");
        self.config.retry_backoff * self.config.backoff_base.powi(retry as i32 - 1)
    }

    /// The closed-form [`FaultPlan`] of the upload keyed by
    /// `(client, tick)`.
    pub fn plan(&self, client: usize, tick: u64) -> FaultPlan {
        FaultPlan::for_upload(self, client, tick)
    }
}

/// The resolved outcome of one upload under a [`FaultInjector`]: what the
/// driver's incremental `UploadRetry` replay converges to, as one pure
/// function. Tests cross-check the event-driven path against this.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Attempts that failed (0 = clean first-try delivery).
    pub failures: u32,
    /// Whether the update was ultimately delivered (`false`: the retry cap
    /// was exhausted and the update dropped permanently).
    pub delivered: bool,
    /// Total backoff the schedule paid, summed over the retransmissions
    /// actually made (excludes retransmission airtime — that is the
    /// client's own comm cost, re-paid per attempt).
    pub backoff_seconds: f64,
}

impl FaultPlan {
    /// Replays the attempt sequence of one upload to its conclusion.
    pub fn for_upload(injector: &FaultInjector, client: usize, tick: u64) -> Self {
        let max_retries = injector.config.max_retries;
        let mut failures = 0u32;
        while injector.upload_attempt_fails(client, tick, failures) {
            failures += 1;
            if failures > max_retries {
                break;
            }
        }
        let delivered = failures <= max_retries;
        let retransmissions = if delivered { failures } else { max_retries };
        let mut backoff_seconds = 0.0;
        for r in 1..=retransmissions {
            backoff_seconds += injector.backoff_delay(r);
        }
        Self {
            failures,
            delivered,
            backoff_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 1234;

    #[test]
    fn iid_is_always_online() {
        let m = AvailabilityModel::Iid;
        for client in 0..32 {
            for t in [0.0, 0.37, 123.4] {
                assert_eq!(m.offline_until(SEED, client, t), None);
            }
        }
    }

    #[test]
    fn diurnal_windows_end_when_promised_and_repeat_with_the_period() {
        let m = AvailabilityModel::Diurnal {
            period: 1.0,
            phase_spread: 1.0,
            night_offline: 0.3,
        };
        // Find an offline (client, time) pair; with 30% occupancy over 64
        // clients × 8 probes one must exist.
        let mut found = None;
        'search: for client in 0..64 {
            for i in 0..8 {
                let t = i as f64 * 0.125;
                if let Some(until) = m.offline_until(SEED, client, t) {
                    found = Some((client, t, until));
                    break 'search;
                }
            }
        }
        let (client, t, until) = found.expect("a 30%-night fleet has offline probes");
        assert!(until > t && until <= t + 0.3 + 1e-12);
        // Available the instant the window ends, offline again one period
        // before the probe (the wave is periodic).
        assert_eq!(m.offline_until(SEED, client, until), None);
        assert!(m.is_offline(SEED, client, t + 1.0));
        // Same window one period later (up to `rem_euclid` float rounding).
        let next = m.offline_until(SEED, client, t + 1.0).unwrap();
        assert!(((next - 1.0 - t) - (until - t)).abs() < 1e-9);
    }

    #[test]
    fn diurnal_phases_spread_across_clients() {
        let m = AvailabilityModel::Diurnal {
            period: 1.0,
            phase_spread: 1.0,
            night_offline: 0.4,
        };
        // At one instant, a spread fleet is partially — not uniformly —
        // offline, and the occupancy is near the configured fraction.
        let offline = (0..512).filter(|&k| m.is_offline(SEED, k, 0.25)).count();
        assert!(offline > 0 && offline < 512);
        let frac = offline as f64 / 512.0;
        assert!((frac - 0.4).abs() < 0.1, "occupancy {frac} far from 0.4");
    }

    #[test]
    fn zero_phase_spread_is_one_timezone() {
        let m = AvailabilityModel::Diurnal {
            period: 1.0,
            phase_spread: 0.0,
            night_offline: 0.25,
        };
        // Everyone shares phase 0: the whole fleet is offline at 0.1 and
        // online at 0.5.
        for k in 0..32 {
            assert!(m.is_offline(SEED, k, 0.1));
            assert!(!m.is_offline(SEED, k, 0.5));
        }
    }

    #[test]
    fn burst_takes_a_whole_zone_offline_together() {
        let zones = 4;
        let m = AvailabilityModel::Burst {
            zones,
            every: 1.0,
            outage: 0.5,
        };
        // Scan the first windows for an instant inside an outage.
        let mut hit = None;
        'scan: for w in 0..8 {
            for i in 0..20 {
                let t = w as f64 + i as f64 * 0.05;
                if let Some(k) = (0..64).find(|&k| m.is_offline(SEED, k, t)) {
                    hit = Some((t, zone_assignment(SEED, k, zones)));
                    break 'scan;
                }
            }
        }
        let (t, hit_zone) = hit.expect("a 50%-duty burst strikes within 8 windows");
        for k in 0..64 {
            assert_eq!(
                m.is_offline(SEED, k, t),
                zone_assignment(SEED, k, zones) == hit_zone,
                "burst offline state must equal zone membership"
            );
        }
    }

    #[test]
    fn burst_outages_stay_inside_their_window() {
        let m = AvailabilityModel::Burst {
            zones: 3,
            every: 2.0,
            outage: 0.5,
        };
        for k in 0..32 {
            for i in 0..200 {
                let t = i as f64 * 0.05;
                if let Some(until) = m.offline_until(SEED, k, t) {
                    let window_end = (t / 2.0).floor() * 2.0 + 2.0;
                    assert!(until <= window_end + 1e-12);
                    assert!(until - t <= 0.5 + 1e-12);
                }
            }
        }
    }

    #[test]
    fn names_round_trip_and_presets_validate() {
        for name in ["iid", "diurnal", "burst"] {
            let m = AvailabilityModel::from_name(name).unwrap();
            assert_eq!(m.name(), name);
            m.validate().unwrap();
        }
        assert_eq!(AvailabilityModel::from_name("weibull"), None);
        assert_eq!(AvailabilityModel::default(), AvailabilityModel::Iid);
    }

    #[test]
    fn bad_availability_knobs_are_rejected_with_actionable_messages() {
        let bad = [
            AvailabilityModel::Diurnal {
                period: 0.0,
                phase_spread: 0.5,
                night_offline: 0.3,
            },
            AvailabilityModel::Diurnal {
                period: 1.0,
                phase_spread: 1.5,
                night_offline: 0.3,
            },
            AvailabilityModel::Diurnal {
                period: 1.0,
                phase_spread: 0.5,
                night_offline: 1.0,
            },
            AvailabilityModel::Burst {
                zones: 0,
                every: 1.0,
                outage: 0.5,
            },
            AvailabilityModel::Burst {
                zones: 4,
                every: 1.0,
                outage: 1.5,
            },
            AvailabilityModel::Burst {
                zones: 4,
                every: 0.0,
                outage: 0.0,
            },
        ];
        for m in bad {
            let err = m.validate().unwrap_err();
            assert!(!err.is_empty(), "{m:?} must carry a message");
        }
    }

    #[test]
    fn bad_fault_knobs_are_rejected() {
        assert!(FaultConfig::none().validate().is_ok());
        let bad = [
            FaultConfig {
                upload_failure_prob: 1.0,
                ..FaultConfig::default()
            },
            FaultConfig {
                backoff_base: 1.0,
                ..FaultConfig::default()
            },
            FaultConfig {
                retry_backoff: 0.0,
                ..FaultConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} must be rejected");
        }
    }

    #[test]
    fn disabled_injector_never_fails_an_attempt() {
        let inj = FaultInjector::new(SEED, FaultConfig::none());
        for client in 0..64 {
            assert!(!inj.upload_attempt_fails(client, 3, 0));
        }
        let plan = inj.plan(9, 1);
        assert_eq!(
            plan,
            FaultPlan {
                failures: 0,
                delivered: true,
                backoff_seconds: 0.0
            }
        );
    }

    #[test]
    fn attempt_fates_are_pure_and_attempt_indexed() {
        let inj = FaultInjector::new(
            SEED,
            FaultConfig {
                upload_failure_prob: 0.5,
                ..FaultConfig::default()
            },
        );
        let mut fails = 0;
        for client in 0..200 {
            let a = inj.upload_attempt_fails(client, 7, 0);
            assert_eq!(a, inj.upload_attempt_fails(client, 7, 0), "pure draw");
            fails += a as usize;
        }
        assert!((50..150).contains(&fails), "rate {fails}/200 far from 1/2");
        // Different attempts and ticks draw independent fates: over many
        // clients the pairs must disagree somewhere.
        assert!((0..200)
            .any(|k| inj.upload_attempt_fails(k, 7, 0) != inj.upload_attempt_fails(k, 7, 1)));
        assert!((0..200)
            .any(|k| inj.upload_attempt_fails(k, 7, 0) != inj.upload_attempt_fails(k, 8, 0)));
    }

    #[test]
    fn backoff_grows_exponentially() {
        let inj = FaultInjector::new(
            SEED,
            FaultConfig {
                upload_failure_prob: 0.5,
                retry_backoff: 0.01,
                backoff_base: 2.0,
                max_retries: 3,
            },
        );
        assert_eq!(inj.backoff_delay(1), 0.01);
        assert_eq!(inj.backoff_delay(2), 0.02);
        assert_eq!(inj.backoff_delay(3), 0.04);
    }

    #[test]
    fn plans_match_a_manual_attempt_replay() {
        let inj = FaultInjector::new(
            SEED,
            FaultConfig {
                upload_failure_prob: 0.45,
                max_retries: 2,
                retry_backoff: 0.01,
                backoff_base: 2.0,
            },
        );
        let mut saw_drop = false;
        let mut saw_retry_success = false;
        for client in 0..400 {
            let plan = inj.plan(client, 11);
            // Manual replay of the driver's incremental logic.
            let mut failures = 0u32;
            while failures <= 2 && inj.upload_attempt_fails(client, 11, failures) {
                failures += 1;
            }
            let delivered = failures <= 2;
            assert_eq!(plan.failures, failures);
            assert_eq!(plan.delivered, delivered);
            let expect_backoff = match failures {
                0 => 0.0,
                1 => 0.01,
                2 => 0.01 + 0.02,
                _ => 0.01 + 0.02, // dropped: only 2 retransmissions made
            };
            assert_eq!(plan.backoff_seconds, expect_backoff);
            saw_drop |= !plan.delivered;
            saw_retry_success |= plan.delivered && plan.failures > 0;
        }
        assert!(saw_drop, "p=0.45 with 2 retries must drop someone in 400");
        assert!(saw_retry_success, "and deliver someone on a retry");
    }
}
