//! Unit-level masks and their parameter-level expansions.

use fedlps_nn::unit::UnitLayout;
use serde::{Deserialize, Serialize};

/// A keep/drop decision for every sparsifiable unit of a model, in the
/// layer-major order defined by the model's [`UnitLayout`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitMask {
    keep: Vec<bool>,
}

impl UnitMask {
    /// Creates a mask from explicit keep flags.
    pub fn from_keep(keep: Vec<bool>) -> Self {
        Self { keep }
    }

    /// A mask keeping every unit (the dense model).
    pub fn dense(total_units: usize) -> Self {
        Self {
            keep: vec![true; total_units],
        }
    }

    /// Number of units covered by the mask.
    pub fn len(&self) -> usize {
        self.keep.len()
    }

    /// Whether the mask covers zero units.
    pub fn is_empty(&self) -> bool {
        self.keep.is_empty()
    }

    /// Keep flags in layer-major unit order.
    pub fn keep_flags(&self) -> &[bool] {
        &self.keep
    }

    /// Whether unit `j` is retained.
    pub fn is_kept(&self, j: usize) -> bool {
        self.keep[j]
    }

    /// Number of retained units.
    pub fn retained_units(&self) -> usize {
        self.keep.iter().filter(|&&k| k).count()
    }

    /// Fraction of retained units (the realised unit-level sparse ratio).
    pub fn unit_ratio(&self) -> f64 {
        if self.keep.is_empty() {
            return 1.0;
        }
        self.retained_units() as f64 / self.keep.len() as f64
    }

    /// Expands to a multiplicative parameter mask (1.0 kept / 0.0 dropped).
    pub fn param_mask(&self, layout: &UnitLayout) -> Vec<f32> {
        layout.expand_mask(&self.keep)
    }

    /// Number of parameters retained under this mask (non-unit parameters are
    /// always retained).
    pub fn retained_params(&self, layout: &UnitLayout) -> usize {
        layout.retained_params(&self.keep)
    }

    /// Fraction of parameters retained — the quantity the paper's
    /// communication accounting uses.
    pub fn param_ratio(&self, layout: &UnitLayout) -> f64 {
        self.retained_params(layout) as f64 / layout.total_params() as f64
    }

    /// Retained units per sparsifiable layer (feeds the FLOP model).
    pub fn retained_per_layer(&self, layout: &UnitLayout) -> Vec<usize> {
        layout.retained_per_layer(&self.keep)
    }

    /// Returns `params ⊙ m` as a new vector.
    pub fn apply(&self, layout: &UnitLayout, params: &[f32]) -> Vec<f32> {
        let mask = self.param_mask(layout);
        params.iter().zip(mask.iter()).map(|(p, m)| p * m).collect()
    }

    /// Applies the mask in place: `params[i] = 0` for dropped parameters.
    pub fn apply_in_place(&self, layout: &UnitLayout, params: &mut [f32]) {
        let mask = self.param_mask(layout);
        for (p, m) in params.iter_mut().zip(mask.iter()) {
            *p *= m;
        }
    }

    /// Element-wise logical AND of two masks (units kept by both).
    pub fn intersect(&self, other: &UnitMask) -> UnitMask {
        assert_eq!(self.len(), other.len());
        UnitMask {
            keep: self
                .keep
                .iter()
                .zip(other.keep.iter())
                .map(|(a, b)| *a && *b)
                .collect(),
        }
    }

    /// Element-wise logical OR of two masks (units kept by either).
    pub fn union(&self, other: &UnitMask) -> UnitMask {
        assert_eq!(self.len(), other.len());
        UnitMask {
            keep: self
                .keep
                .iter()
                .zip(other.keep.iter())
                .map(|(a, b)| *a || *b)
                .collect(),
        }
    }

    /// Overlap (Jaccard index) between the retained sets of two masks — used
    /// in tests and analyses of pattern personalization.
    pub fn jaccard(&self, other: &UnitMask) -> f64 {
        assert_eq!(self.len(), other.len());
        let inter = self.intersect(other).retained_units();
        let uni = self.union(other).retained_units();
        if uni == 0 {
            1.0
        } else {
            inter as f64 / uni as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_nn::mlp::{Mlp, MlpConfig};
    use fedlps_nn::model::ModelArch;
    use fedlps_tensor::rng_from_seed;

    fn toy_mlp() -> Mlp {
        Mlp::new(MlpConfig {
            input_dim: 4,
            hidden: vec![6, 4],
            num_classes: 3,
        })
    }

    #[test]
    fn dense_mask_retains_everything() {
        let mlp = toy_mlp();
        let mask = UnitMask::dense(mlp.unit_layout().total_units());
        assert_eq!(mask.retained_units(), 10);
        assert_eq!(mask.unit_ratio(), 1.0);
        assert_eq!(mask.retained_params(mlp.unit_layout()), mlp.param_count());
        assert_eq!(mask.param_ratio(mlp.unit_layout()), 1.0);
    }

    #[test]
    fn apply_zeroes_dropped_units_only() {
        let mlp = toy_mlp();
        let mut rng = rng_from_seed(1);
        let params = mlp.init_params(&mut rng);
        let mut keep = vec![true; 10];
        keep[0] = false;
        let mask = UnitMask::from_keep(keep);
        let masked = mask.apply(mlp.unit_layout(), &params);
        // Unit 0 of hidden0 owns W0 row 0 (4 params) and b0[0].
        assert!(masked[..4].iter().all(|&v| v == 0.0));
        assert_ne!(&masked[4..8], &[0.0; 4]);
        let zeroed = params.len()
            - masked
                .iter()
                .zip(params.iter())
                .filter(|(m, p)| *m == *p)
                .count();
        // Exactly the 5 owned parameters changed (assuming none were already 0).
        assert_eq!(
            zeroed, 4,
            "bias started at zero so only 4 weight values change"
        );
    }

    #[test]
    fn set_operations_and_jaccard() {
        let a = UnitMask::from_keep(vec![true, true, false, false]);
        let b = UnitMask::from_keep(vec![true, false, true, false]);
        assert_eq!(a.intersect(&b).retained_units(), 1);
        assert_eq!(a.union(&b).retained_units(), 3);
        assert!((a.jaccard(&b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.jaccard(&a), 1.0);
        let empty = UnitMask::from_keep(vec![false; 4]);
        assert_eq!(empty.jaccard(&empty), 1.0);
    }

    #[test]
    fn apply_in_place_matches_apply() {
        let mlp = toy_mlp();
        let mut rng = rng_from_seed(2);
        let params = mlp.init_params(&mut rng);
        let mask = UnitMask::from_keep((0..10).map(|i| i % 2 == 0).collect());
        let expect = mask.apply(mlp.unit_layout(), &params);
        let mut in_place = params.clone();
        mask.apply_in_place(mlp.unit_layout(), &mut in_place);
        assert_eq!(expect, in_place);
    }

    #[test]
    fn ratios_decrease_with_dropped_units() {
        let mlp = toy_mlp();
        let half = UnitMask::from_keep((0..10).map(|i| i < 5).collect());
        assert!(half.param_ratio(mlp.unit_layout()) < 1.0);
        assert!(half.unit_ratio() == 0.5);
        assert_eq!(half.retained_per_layer(mlp.unit_layout()), vec![5, 0]);
    }
}
