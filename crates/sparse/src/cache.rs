//! Cross-round mask caching.
//!
//! The round loop historically re-derived every selected client's pattern
//! from scratch each round even though the bandit usually proposes (nearly)
//! the same sparse ratio. [`MaskCache`] keeps the most recent mask per
//! client, keyed by the ratio the mask was built at, and hands it back as
//! long as the ratio still extracts the *same submodel shape* — the caller
//! decides whether that reuse is sound for its pattern strategy (see
//! [`PatternStrategy::cacheable_across_rounds`](crate::pattern::PatternStrategy::cacheable_across_rounds)).
//! For FedLPS's learnable pattern this deliberately extends the
//! within-round mask freeze across participations at an unchanged ratio:
//! the importance indicator keeps learning every round and reshapes the
//! pattern at the client's next ratio change, rather than at every
//! participation.
//!
//! Keys are quantized: a mask depends on the sparse ratio only through the
//! per-layer retained-unit counts `⌈s · J_l⌉` (see
//! [`retained_per_layer`]), so two ratios
//! that retain identical unit counts share a cache entry. This matters in
//! practice because P-UCBV samples ratios continuously inside its best
//! partition — exact floating-point keys would never hit.
//!
//! The cache is deliberately read-only-friendly: [`MaskCache::lookup`] takes
//! `&self` so parallel client tasks can consult a shared snapshot, while
//! inserts, invalidations and hit/miss accounting happen in the serial
//! absorb phase of the round loop.

use std::collections::BTreeMap;
use std::sync::Arc;

use fedlps_nn::pack::PackedModel;

use crate::mask::UnitMask;
use crate::ratio::retained_per_layer;

/// One client's cached pattern plus the quantized ratio key it was built at.
#[derive(Debug, Clone)]
struct CacheEntry {
    /// Per-layer retained-unit counts implied by the ratio at build time.
    counts: Vec<usize>,
    mask: UnitMask,
    /// The compiled packed submodel of `mask`, attached lazily once a packed
    /// execution path has compiled it, and shared with parallel client tasks
    /// through the `Arc`.
    plan: Option<Arc<PackedModel>>,
    /// How many participations this entry has already been served to (drives
    /// the optional [`refresh_every`](MaskCache::with_refresh_every) rebuild).
    served: u32,
}

/// Per-client cross-round mask cache with hit/miss accounting.
///
/// Each client owns at most one entry (its latest pattern); a lookup at a
/// ratio that retains different per-layer unit counts misses, and the
/// subsequent insert replaces — i.e. invalidates — that client's entry only.
///
/// Entries live in a sparse map keyed by client id, so the cache costs
/// `O(clients that have actually built a mask)` memory regardless of the
/// registered population size — a million-client federation with a 64-client
/// cohort holds at most a handful of entries per round.
#[derive(Debug, Clone)]
pub struct MaskCache {
    /// Sparsifiable units per layer; fixes the ratio quantization.
    units_per_layer: Vec<usize>,
    entries: BTreeMap<usize, CacheEntry>,
    /// Rebuild a client's mask every `n` participations (`None` = freeze
    /// until the ratio moves to a different shape, the default contract).
    refresh_every: Option<u32>,
    hits: u64,
    misses: u64,
}

impl MaskCache {
    /// Creates an empty cache for a model with the given per-layer
    /// sparsifiable unit counts. The cache grows with the clients that
    /// actually participate, not with the registered population, so no
    /// population size is declared up front.
    pub fn new(units_per_layer: Vec<usize>) -> Self {
        Self {
            units_per_layer,
            entries: BTreeMap::new(),
            refresh_every: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Caps how long a mask may be reused: with `Some(n)`, a client's entry
    /// is rebuilt from the (still-training) importance indicator at every
    /// `n`-th participation instead of being frozen until its ratio changes
    /// shape. `Some(1)` disables reuse entirely; `None` restores the default
    /// freeze-until-ratio-change contract. This is the knob the stable-ratio
    /// ablations (RCR / Fixed) use to keep tracking the evolving indicator.
    pub fn with_refresh_every(mut self, refresh_every: Option<u32>) -> Self {
        assert!(
            refresh_every.map_or(true, |n| n >= 1),
            "refresh period must be at least 1 participation"
        );
        self.refresh_every = refresh_every;
        self
    }

    /// The configured refresh period, if any.
    pub fn refresh_every(&self) -> Option<u32> {
        self.refresh_every
    }

    /// Notes that `client`'s cached entry was served for one participation
    /// (ages it towards its refresh). Called from the serial absorb phase,
    /// mirroring [`record`](Self::record) for lookups that ran against a
    /// parallel snapshot.
    pub fn mark_served(&mut self, client: usize) {
        if let Some(entry) = self.entries.get_mut(&client) {
            entry.served = entry.served.saturating_add(1);
        }
    }

    /// The quantized key a ratio maps to: per-layer retained-unit counts.
    pub fn key_for(&self, ratio: f64) -> Vec<usize> {
        retained_per_layer(&self.units_per_layer, ratio)
    }

    /// Returns the cached mask for `client` if one exists, was built at a
    /// ratio retaining the same per-layer unit counts as `ratio`, and is not
    /// due for a periodic refresh. Pure read: safe to call from parallel
    /// client tasks; does not touch the counters or the serve ages (call
    /// [`record`](Self::record) / [`mark_served`](Self::mark_served) from the
    /// serial phase instead).
    pub fn lookup(&self, client: usize, ratio: f64) -> Option<&UnitMask> {
        let entry = self.entries.get(&client)?;
        if let Some(n) = self.refresh_every {
            // Built at participation 0, an entry serves participations
            // 1..n-1 and is rebuilt at the n-th.
            if entry.served >= n - 1 {
                return None;
            }
        }
        if entry.counts == self.key_for(ratio) {
            Some(&entry.mask)
        } else {
            None
        }
    }

    /// The compiled packed submodel cached next to `client`'s mask, under the
    /// same validity conditions as [`lookup`](Self::lookup). Pure read; the
    /// `Arc` lets parallel client tasks execute the plan without copying it.
    pub fn lookup_plan(&self, client: usize, ratio: f64) -> Option<Arc<PackedModel>> {
        self.lookup(client, ratio)?;
        self.entries.get(&client)?.plan.clone()
    }

    /// Attaches a compiled plan to `client`'s current entry (no-op when the
    /// client holds no entry). Called from the serial absorb phase after a
    /// task compiled the plan the cache was missing.
    pub fn attach_plan(&mut self, client: usize, plan: Arc<PackedModel>) {
        if let Some(entry) = self.entries.get_mut(&client) {
            entry.plan = Some(plan);
        }
    }

    /// Whether `client` currently holds a (possibly stale-keyed) entry.
    pub fn contains(&self, client: usize) -> bool {
        self.entries.contains_key(&client)
    }

    /// Stores `mask` as `client`'s pattern at `ratio`, replacing (and thereby
    /// invalidating) whatever that client had before. Other clients' entries
    /// are untouched.
    pub fn insert(&mut self, client: usize, ratio: f64, mask: UnitMask) {
        let counts = self.key_for(ratio);
        self.entries.insert(
            client,
            CacheEntry {
                counts,
                mask,
                plan: None,
                served: 0,
            },
        );
    }

    /// Convenience used by serial callers: counted lookup-or-build. Returns
    /// the mask and whether it was served from the cache.
    pub fn get_or_insert_with(
        &mut self,
        client: usize,
        ratio: f64,
        build: impl FnOnce() -> UnitMask,
    ) -> (UnitMask, bool) {
        if let Some(mask) = self.lookup(client, ratio).cloned() {
            self.record(true);
            self.mark_served(client);
            (mask, true)
        } else {
            self.record(false);
            let mask = build();
            self.insert(client, ratio, mask.clone());
            (mask, false)
        }
    }

    /// Drops `client`'s entry (e.g. when its persistent state is reset).
    pub fn invalidate(&mut self, client: usize) {
        self.entries.remove(&client);
    }

    /// Records the outcome of a lookup performed outside the cache (the
    /// parallel round loop looks up against a snapshot and reports back in
    /// the deterministic reduce).
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that required a rebuild.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// `hits / (hits + misses)`, or 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of clients currently holding an entry — the materialized
    /// footprint of the cache (population-scale assertions count this).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no client holds an entry.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_of(bits: &[bool]) -> UnitMask {
        UnitMask::from_keep(bits.to_vec())
    }

    fn cache() -> MaskCache {
        // Two layers of 8 and 4 sparsifiable units.
        MaskCache::new(vec![8, 4])
    }

    #[test]
    fn fresh_cache_is_empty_and_misses() {
        let c = cache();
        assert!(c.is_empty());
        assert!(c.lookup(0, 0.5).is_none());
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn insert_then_lookup_hits_at_equivalent_ratios() {
        let mut c = cache();
        let m = mask_of(&[true; 12]);
        c.insert(1, 0.5, m.clone());
        assert_eq!(c.lookup(1, 0.5), Some(&m));
        // 0.5 and 0.49 both retain ⌈8s⌉=4 and ⌈4s⌉=2 units.
        assert_eq!(c.key_for(0.5), c.key_for(0.49));
        assert_eq!(c.lookup(1, 0.49), Some(&m));
        // A genuinely different shape misses.
        assert!(c.lookup(1, 0.25).is_none());
        // Other clients are unaffected.
        assert!(c.lookup(0, 0.5).is_none());
    }

    #[test]
    fn ratio_change_invalidates_exactly_that_clients_entry() {
        let mut c = cache();
        let m0 = mask_of(&[true; 12]);
        let mut keep = vec![false; 12];
        keep[0] = true;
        keep[8] = true;
        let m1 = mask_of(&keep);
        c.insert(0, 0.5, m0.clone());
        c.insert(2, 0.5, m0.clone());
        // Client 0's ratio changes: the miss + re-insert replaces only its entry.
        assert!(c.lookup(0, 0.125).is_none());
        c.insert(0, 0.125, m1.clone());
        assert_eq!(c.lookup(0, 0.125), Some(&m1));
        assert!(c.lookup(0, 0.5).is_none(), "old key is gone");
        assert_eq!(c.lookup(2, 0.5), Some(&m0), "client 2 is untouched");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn get_or_insert_with_counts_hits_and_misses() {
        let mut c = cache();
        let build = || mask_of(&[true; 12]);
        let (_, hit) = c.get_or_insert_with(0, 0.75, build);
        assert!(!hit);
        let (_, hit) = c.get_or_insert_with(0, 0.75, build);
        assert!(hit);
        let (_, hit) = c.get_or_insert_with(0, 0.25, build);
        assert!(!hit, "shape change rebuilds");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        assert!((c.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut c = cache();
        c.insert(0, 0.5, mask_of(&[true; 12]));
        c.record(true);
        c.invalidate(0);
        assert!(c.lookup(0, 0.5).is_none());
        c.insert(1, 0.5, mask_of(&[true; 12]));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn entries_cost_only_the_clients_that_built_a_mask() {
        let mut c = MaskCache::new(vec![4]);
        // Arbitrarily large client ids are fine: storage is per-entry, not
        // per-registered-client.
        c.insert(999_999, 0.5, mask_of(&[true; 4]));
        c.insert(5, 0.5, mask_of(&[true; 4]));
        assert!(c.contains(5) && c.contains(999_999));
        assert!(!c.contains(0));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn refresh_every_invalidates_after_n_participations() {
        // Rebuild every 3rd participation: build (miss), serve twice (hits),
        // then the entry ages out and the next lookup must rebuild.
        let mut c = cache().with_refresh_every(Some(3));
        assert_eq!(c.refresh_every(), Some(3));
        let build = || mask_of(&[true; 12]);
        let (_, hit) = c.get_or_insert_with(0, 0.5, build);
        assert!(!hit, "first participation builds");
        for i in 0..2 {
            let (_, hit) = c.get_or_insert_with(0, 0.5, build);
            assert!(hit, "participation {} is served", i + 2);
        }
        assert!(
            c.lookup(0, 0.5).is_none(),
            "the aged entry must invalidate even at an unchanged ratio"
        );
        let (_, hit) = c.get_or_insert_with(0, 0.5, build);
        assert!(!hit, "the refresh participation rebuilds");
        // The rebuilt entry starts a fresh serve budget.
        let (_, hit) = c.get_or_insert_with(0, 0.5, build);
        assert!(hit);
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn refresh_every_one_disables_reuse() {
        let mut c = cache().with_refresh_every(Some(1));
        let build = || mask_of(&[true; 12]);
        for _ in 0..3 {
            let (_, hit) = c.get_or_insert_with(0, 0.5, build);
            assert!(!hit, "a period of 1 rebuilds every participation");
        }
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn refresh_only_ages_on_serves_and_respects_shape_invalidation() {
        let mut c = cache().with_refresh_every(Some(2));
        c.insert(0, 0.5, mask_of(&[true; 12]));
        // A shape change still invalidates immediately, refresh or not.
        assert!(c.lookup(0, 0.125).is_none());
        // Un-served entries never age out: repeated pure lookups keep hitting.
        for _ in 0..5 {
            assert!(c.lookup(0, 0.5).is_some());
        }
        c.mark_served(0);
        assert!(c.lookup(0, 0.5).is_none(), "served once, period 2: due");
    }

    #[test]
    #[should_panic]
    fn zero_refresh_period_rejected() {
        cache().with_refresh_every(Some(0));
    }

    #[test]
    fn compiled_plans_ride_their_mask_entries() {
        use crate::plan::SubmodelPlan;
        use fedlps_nn::mlp::{Mlp, MlpConfig};
        use fedlps_nn::model::ModelArch;
        use std::sync::Arc;

        let mlp = Mlp::new(MlpConfig {
            input_dim: 3,
            hidden: vec![4],
            num_classes: 2,
        });
        let mut c = MaskCache::new(vec![4]);
        let mask = mask_of(&[true, true, false, false]);
        c.insert(0, 0.5, mask.clone());
        assert!(c.lookup_plan(0, 0.5).is_none(), "no plan compiled yet");

        let packed = SubmodelPlan::from_mask(mlp.unit_layout(), &mask)
            .compile(&mlp)
            .expect("packable");
        c.attach_plan(0, Arc::new(packed));
        assert!(c.lookup_plan(0, 0.5).is_some(), "plan serves with the mask");
        // The plan obeys the same validity rules as the mask itself.
        assert!(
            c.lookup_plan(0, 0.125).is_none(),
            "shape change invalidates"
        );
        assert!(c.lookup_plan(1, 0.5).is_none(), "other clients unaffected");
        // Replacing the entry drops the stale plan.
        c.insert(0, 0.5, mask_of(&[false, false, true, true]));
        assert!(c.lookup_plan(0, 0.5).is_none());
        // Attaching to a client without an entry is a no-op, not a panic.
        let other = SubmodelPlan::from_mask(mlp.unit_layout(), &mask)
            .compile(&mlp)
            .expect("packable");
        c.attach_plan(1, Arc::new(other));
        assert!(c.lookup_plan(1, 0.5).is_none());
    }
}
