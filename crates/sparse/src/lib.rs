//! Structured sparsification: unit masks and the strategies that choose them.
//!
//! A sparse model in the paper is `ω ⊙ m` where the binary mask `m` is derived
//! from a *sparse pattern* `P` (which units survive) and a *sparse ratio* `s`
//! (how many survive) via `m = M(P | ω, s)` (Eq. 2). This crate implements:
//!
//! * [`mask::UnitMask`] — a keep/drop decision per sparsifiable unit, plus the
//!   expansion to parameter-level masks through the model's
//!   [`UnitLayout`](fedlps_nn::unit::UnitLayout);
//! * [`pattern::PatternStrategy`] — the pattern families compared in the paper
//!   (random, ordered, rolling-ordered, magnitude-based) and the
//!   importance-driven *learnable* pattern of FedLPS (Eq. 4);
//! * [`ratio`] — helpers for turning a sparse ratio into per-layer retained
//!   unit counts under the paper's layer-wise uniform-ratio convention;
//! * [`cache::MaskCache`] — cross-round per-client mask reuse with hit/miss
//!   accounting, keyed by the submodel shape a ratio extracts.

pub mod cache;
pub mod mask;
pub mod pattern;
pub mod plan;
pub mod ratio;

pub use cache::MaskCache;
pub use mask::UnitMask;
pub use pattern::PatternStrategy;
pub use plan::SubmodelPlan;
