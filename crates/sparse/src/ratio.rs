//! Sparse-ratio bookkeeping.
//!
//! The paper performs *layer-wise* sparsification with the same ratio `s` for
//! every sparsifiable layer (Section III-B, "Client-side Update"), so a ratio
//! translates into "keep `⌈s · J_l⌉` units of layer `l`". These helpers
//! centralise that rounding so every pattern strategy and every baseline uses
//! identical semantics.

/// Clamps a sparse ratio into the valid `[0, 1]` range.
pub fn clamp_ratio(ratio: f64) -> f64 {
    ratio.clamp(0.0, 1.0)
}

/// Number of units to retain in a layer of `layer_units` units at ratio `s`.
///
/// At least one unit is always retained in a non-empty layer (a layer with
/// zero units would disconnect the network), matching the behaviour of the
/// width-scaling baselines (HeteroFL/Fjord keep at least one channel).
pub fn retained_units(layer_units: usize, ratio: f64) -> usize {
    if layer_units == 0 {
        return 0;
    }
    let s = clamp_ratio(ratio);
    ((layer_units as f64 * s).ceil() as usize).clamp(1, layer_units)
}

/// Retained unit counts for every layer under the uniform layer-wise ratio.
pub fn retained_per_layer(units_per_layer: &[usize], ratio: f64) -> Vec<usize> {
    units_per_layer
        .iter()
        .map(|&j| retained_units(j, ratio))
        .collect()
}

/// The realised unit-level ratio after rounding (can be slightly above the
/// requested ratio because of the ceil and the ≥1 rule).
pub fn realised_ratio(units_per_layer: &[usize], ratio: f64) -> f64 {
    let total: usize = units_per_layer.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let kept: usize = retained_per_layer(units_per_layer, ratio).iter().sum();
    kept as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping() {
        assert_eq!(clamp_ratio(-0.5), 0.0);
        assert_eq!(clamp_ratio(0.3), 0.3);
        assert_eq!(clamp_ratio(2.0), 1.0);
    }

    #[test]
    fn retained_units_basics() {
        assert_eq!(retained_units(10, 0.5), 5);
        assert_eq!(retained_units(10, 0.55), 6);
        assert_eq!(retained_units(10, 1.0), 10);
        assert_eq!(retained_units(10, 0.0), 1, "at least one unit survives");
        assert_eq!(retained_units(0, 0.5), 0);
    }

    #[test]
    fn per_layer_and_realised_ratio() {
        let layers = vec![8, 4, 0];
        assert_eq!(retained_per_layer(&layers, 0.25), vec![2, 1, 0]);
        let realised = realised_ratio(&layers, 0.25);
        assert!((realised - 3.0 / 12.0).abs() < 1e-12);
        assert_eq!(realised_ratio(&[], 0.3), 1.0);
    }

    #[test]
    fn realised_ratio_never_below_requested() {
        for &ratio in &[0.1, 0.33, 0.5, 0.77, 1.0] {
            let layers = vec![7, 13, 5];
            assert!(realised_ratio(&layers, ratio) + 1e-9 >= ratio);
        }
    }
}
