//! Sparse-pattern strategies.
//!
//! The paper contrasts three heuristic families — random dropout (Federated
//! Dropout), ordered dropout (Fjord / HeteroFL / FedRolex) and magnitude-based
//! pruning (FedMP / Hermes / LotteryFL) — with FedLPS's *learnable* pattern,
//! in which per-unit importance scores trained on local data are thresholded
//! at the `(1 − s)`-quantile (Eq. 4). All of them are implemented here behind
//! one enum so the ablation benchmark of Figure 9a can sweep them uniformly.

use fedlps_nn::unit::UnitLayout;
use fedlps_tensor::rng::sample_without_replacement;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::mask::UnitMask;
use crate::ratio::retained_units;

/// How the retained units of each layer are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternStrategy {
    /// Uniformly random units per layer (Federated Dropout / eFD style).
    Random,
    /// The first `k` units of each layer (HeteroFL / Fjord ordered dropout).
    Ordered,
    /// A contiguous window of `k` units starting at an offset that advances
    /// every round (FedRolex rolling sub-model extraction).
    RollingOrdered,
    /// The `k` units with the largest parameter-magnitude sums (FedMP / Hermes
    /// / LotteryFL style pruning).
    Magnitude,
    /// The `k` units with the largest *learned importance scores* — FedLPS's
    /// importance-derived pattern (Eq. 4). Requires scores to be supplied.
    Importance,
}

impl PatternStrategy {
    /// All heuristic strategies (everything except the learnable one), in the
    /// order used by the Figure 9a comparison.
    pub fn heuristics() -> [PatternStrategy; 3] {
        [
            PatternStrategy::Random,
            PatternStrategy::Ordered,
            PatternStrategy::Magnitude,
        ]
    }

    /// Name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            PatternStrategy::Random => "random",
            PatternStrategy::Ordered => "ordered",
            PatternStrategy::RollingOrdered => "rolling-ordered",
            PatternStrategy::Magnitude => "magnitude",
            PatternStrategy::Importance => "learnable-importance",
        }
    }

    /// Whether a mask built by this strategy may be reused across rounds at
    /// an unchanged ratio (the [`MaskCache`](crate::cache::MaskCache)
    /// contract). `Ordered` masks are a pure function of the ratio, and
    /// `Importance` masks are a function of the ratio and the client's
    /// *persistent* indicator (FedLPS deliberately freezes the round's
    /// pattern while the indicator keeps learning, so serving the previous
    /// pattern extends that freeze across participations). The other
    /// strategies must be rebuilt every round: `Random` resamples its units,
    /// `RollingOrdered` advances its window with the round index, and
    /// `Magnitude` tracks the evolving weights — caching them would silently
    /// change their semantics.
    pub fn cacheable_across_rounds(&self) -> bool {
        matches!(self, PatternStrategy::Ordered | PatternStrategy::Importance)
    }

    /// Builds a unit mask at the given layer-wise ratio.
    ///
    /// * `params` — current model parameters (used by `Magnitude`);
    /// * `scores` — per-unit importance scores in layout order (required by
    ///   `Importance`, ignored otherwise);
    /// * `round` — current communication round (used by `RollingOrdered` to
    ///   advance the window);
    /// * `rng` — randomness source for `Random`.
    pub fn build_mask(
        &self,
        layout: &UnitLayout,
        params: &[f32],
        scores: Option<&[f32]>,
        ratio: f64,
        round: usize,
        rng: &mut impl Rng,
    ) -> UnitMask {
        let magnitude;
        let per_unit_scores: Option<&[f32]> = match self {
            PatternStrategy::Magnitude => {
                magnitude = layout.magnitude_sums(params);
                Some(&magnitude)
            }
            PatternStrategy::Importance => {
                let s = scores.expect("importance pattern requires scores");
                assert_eq!(
                    s.len(),
                    layout.total_units(),
                    "importance score length must equal the number of units"
                );
                Some(s)
            }
            _ => None,
        };

        let mut keep = vec![false; layout.total_units()];
        let mut offset = 0;
        for layer in layout.layers() {
            let j = layer.len();
            let k = retained_units(j, ratio);
            match self {
                PatternStrategy::Random => {
                    for idx in sample_without_replacement(j, k, rng) {
                        keep[offset + idx] = true;
                    }
                }
                PatternStrategy::Ordered => {
                    for idx in 0..k {
                        keep[offset + idx] = true;
                    }
                }
                PatternStrategy::RollingOrdered => {
                    // FedRolex: the window start advances by one unit per round
                    // and wraps around, so over time every unit is trained.
                    let start = if j == 0 { 0 } else { round % j };
                    for i in 0..k {
                        keep[offset + (start + i) % j] = true;
                    }
                }
                PatternStrategy::Magnitude | PatternStrategy::Importance => {
                    let s = &per_unit_scores.unwrap()[offset..offset + j];
                    for idx in fedlps_tensor::stats::top_k_indices(s, k) {
                        keep[offset + idx] = true;
                    }
                }
            }
            offset += j;
        }
        UnitMask::from_keep(keep)
    }
}

/// FedLPS Eq. (4): derives the learnable pattern by thresholding the
/// importance indicator at the `(1 − s)`-quantile *within each layer* (the
/// paper applies the same ratio layer-wise). Equivalent to the top-k selection
/// of [`PatternStrategy::Importance`]; exposed separately so callers that
/// already hold scores do not need an RNG or parameters.
pub fn learnable_pattern(layout: &UnitLayout, scores: &[f32], ratio: f64) -> UnitMask {
    assert_eq!(scores.len(), layout.total_units());
    let mut keep = vec![false; layout.total_units()];
    let mut offset = 0;
    for layer in layout.layers() {
        let j = layer.len();
        let k = retained_units(j, ratio);
        let layer_scores = &scores[offset..offset + j];
        for idx in fedlps_tensor::stats::top_k_indices(layer_scores, k) {
            keep[offset + idx] = true;
        }
        offset += j;
    }
    UnitMask::from_keep(keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_nn::mlp::{Mlp, MlpConfig};
    use fedlps_nn::model::ModelArch;
    use fedlps_tensor::rng_from_seed;

    fn toy() -> Mlp {
        Mlp::new(MlpConfig {
            input_dim: 5,
            hidden: vec![8, 6],
            num_classes: 4,
        })
    }

    #[test]
    fn every_strategy_hits_the_layerwise_budget() {
        let mlp = toy();
        let mut rng = rng_from_seed(1);
        let params = mlp.init_params(&mut rng);
        let scores: Vec<f32> = (0..mlp.unit_layout().total_units())
            .map(|i| i as f32 * 0.1)
            .collect();
        for strategy in [
            PatternStrategy::Random,
            PatternStrategy::Ordered,
            PatternStrategy::RollingOrdered,
            PatternStrategy::Magnitude,
            PatternStrategy::Importance,
        ] {
            let mask =
                strategy.build_mask(mlp.unit_layout(), &params, Some(&scores), 0.5, 3, &mut rng);
            assert_eq!(
                mask.retained_per_layer(mlp.unit_layout()),
                vec![4, 3],
                "{}",
                strategy.name()
            );
        }
    }

    #[test]
    fn ordered_keeps_prefix_rolling_shifts() {
        let mlp = toy();
        let mut rng = rng_from_seed(2);
        let params = mlp.init_params(&mut rng);
        let ordered = PatternStrategy::Ordered.build_mask(
            mlp.unit_layout(),
            &params,
            None,
            0.25,
            0,
            &mut rng,
        );
        assert!(ordered.is_kept(0) && ordered.is_kept(1));
        assert!(!ordered.is_kept(7));

        let roll0 = PatternStrategy::RollingOrdered.build_mask(
            mlp.unit_layout(),
            &params,
            None,
            0.25,
            0,
            &mut rng,
        );
        let roll3 = PatternStrategy::RollingOrdered.build_mask(
            mlp.unit_layout(),
            &params,
            None,
            0.25,
            3,
            &mut rng,
        );
        assert_ne!(roll0.keep_flags(), roll3.keep_flags());
        assert!(roll3.is_kept(3), "window should start at unit 3 in round 3");
    }

    #[test]
    fn magnitude_prefers_heavy_units() {
        let mlp = toy();
        let layout = mlp.unit_layout();
        let mut params = vec![0.0f32; mlp.param_count()];
        // Make unit 5 of hidden0 and unit 0 of hidden1 heavy.
        for r in &layout.unit(5).ranges {
            for p in &mut params[r.start..r.end()] {
                *p = 10.0;
            }
        }
        for r in &layout.unit(8).ranges {
            for p in &mut params[r.start..r.end()] {
                *p = 10.0;
            }
        }
        let mut rng = rng_from_seed(3);
        let mask =
            PatternStrategy::Magnitude.build_mask(layout, &params, None, 1.0 / 8.0, 0, &mut rng);
        assert!(mask.is_kept(5));
        assert!(mask.is_kept(8));
    }

    #[test]
    fn importance_pattern_matches_learnable_pattern_helper() {
        let mlp = toy();
        let mut rng = rng_from_seed(4);
        let params = mlp.init_params(&mut rng);
        let scores: Vec<f32> = (0..mlp.unit_layout().total_units())
            .map(|i| ((i * 37) % 11) as f32)
            .collect();
        let a = PatternStrategy::Importance.build_mask(
            mlp.unit_layout(),
            &params,
            Some(&scores),
            0.4,
            0,
            &mut rng,
        );
        let b = learnable_pattern(mlp.unit_layout(), &scores, 0.4);
        assert_eq!(a, b);
    }

    #[test]
    fn learnable_pattern_keeps_highest_scores_per_layer() {
        let mlp = toy();
        let mut scores = vec![0.0f32; 14];
        scores[7] = 5.0; // best unit of hidden0
        scores[13] = 5.0; // best unit of hidden1
        let mask = learnable_pattern(mlp.unit_layout(), &scores, 1.0 / 8.0);
        assert!(mask.is_kept(7));
        assert!(mask.is_kept(13));
        assert_eq!(mask.retained_units(), 2);
    }

    #[test]
    fn only_ratio_deterministic_strategies_are_cacheable() {
        assert!(PatternStrategy::Ordered.cacheable_across_rounds());
        assert!(PatternStrategy::Importance.cacheable_across_rounds());
        assert!(!PatternStrategy::Random.cacheable_across_rounds());
        assert!(!PatternStrategy::RollingOrdered.cacheable_across_rounds());
        assert!(!PatternStrategy::Magnitude.cacheable_across_rounds());
    }

    #[test]
    #[should_panic]
    fn importance_without_scores_panics() {
        let mlp = toy();
        let mut rng = rng_from_seed(5);
        let params = mlp.init_params(&mut rng);
        PatternStrategy::Importance.build_mask(mlp.unit_layout(), &params, None, 0.5, 0, &mut rng);
    }

    #[test]
    fn full_ratio_keeps_everything_for_all_strategies() {
        let mlp = toy();
        let mut rng = rng_from_seed(6);
        let params = mlp.init_params(&mut rng);
        let scores = vec![1.0f32; mlp.unit_layout().total_units()];
        for strategy in [
            PatternStrategy::Random,
            PatternStrategy::Ordered,
            PatternStrategy::RollingOrdered,
            PatternStrategy::Magnitude,
            PatternStrategy::Importance,
        ] {
            let mask =
                strategy.build_mask(mlp.unit_layout(), &params, Some(&scores), 1.0, 9, &mut rng);
            assert_eq!(mask.retained_units(), mlp.unit_layout().total_units());
        }
    }
}
