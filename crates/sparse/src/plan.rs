//! Compiling unit masks into executable submodel plans.
//!
//! A [`UnitMask`] says *which* units survive; a
//! [`SubmodelPlan`] turns that into the per-layer kept-unit index lists a
//! model architecture needs to build a physically packed submodel (see
//! [`fedlps_nn::pack`]). The plan itself is architecture-agnostic bookkeeping
//! in the flat [`KeptUnits`] layout — one backing vector plus layer offsets,
//! so deriving a plan costs two allocations however deep the model is.
//! [`SubmodelPlan::compile`] hands it to
//! [`ModelArch::pack`] to obtain the
//! compact executable. Compiled plans are cached per client alongside the
//! masks in [`MaskCache`](crate::cache::MaskCache), so a client whose ratio
//! keeps extracting the same submodel shape pays the compilation once.

use fedlps_nn::model::ModelArch;
use fedlps_nn::pack::{KeptUnits, PackedModel};
use fedlps_nn::unit::UnitLayout;

use crate::mask::UnitMask;

/// Kept-unit index lists, one ascending list per sparsifiable layer, stored
/// flat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmodelPlan {
    kept: KeptUnits,
}

impl SubmodelPlan {
    /// Derives the plan of a unit mask under a model's layout.
    pub fn from_mask(layout: &UnitLayout, mask: &UnitMask) -> Self {
        assert_eq!(mask.len(), layout.total_units(), "mask length mismatch");
        let mut kept = KeptUnits::with_capacity(layout.layers().len(), mask.retained_units());
        let mut j = 0;
        for layer in layout.layers() {
            kept.push_layer((0..layer.len()).filter(|&u| mask.is_kept(j + u)));
            j += layer.len();
        }
        Self { kept }
    }

    /// The kept-unit index lists in layer order.
    pub fn kept(&self) -> &KeptUnits {
        &self.kept
    }

    /// Number of retained units per layer.
    pub fn retained_per_layer(&self) -> Vec<usize> {
        self.kept.retained_per_layer()
    }

    /// Whether every layer keeps at least one unit — the structural condition
    /// for the packed submodel to be a connected network.
    pub fn is_executable(&self) -> bool {
        self.kept.is_executable()
    }

    /// Compiles the plan into a physically packed submodel of `arch`.
    ///
    /// Returns `None` when the plan is not executable or the architecture
    /// does not support packing; callers fall back to masked-dense execution.
    pub fn compile(&self, arch: &dyn ModelArch) -> Option<PackedModel> {
        if !self.is_executable() {
            return None;
        }
        arch.pack(&self.kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlps_nn::mlp::{Mlp, MlpConfig};

    fn mlp() -> Mlp {
        Mlp::new(MlpConfig {
            input_dim: 4,
            hidden: vec![6, 3],
            num_classes: 2,
        })
    }

    fn mask_of(keep: &[bool]) -> UnitMask {
        UnitMask::from_keep(keep.to_vec())
    }

    #[test]
    fn plan_splits_kept_units_by_layer() {
        let model = mlp();
        let keep = [true, false, true, false, false, true, false, true, false];
        let plan = SubmodelPlan::from_mask(model.unit_layout(), &mask_of(&keep));
        assert_eq!(
            plan.kept(),
            &KeptUnits::from_nested(&[vec![0, 2, 5], vec![1]])
        );
        assert_eq!(plan.kept().layer(0), &[0, 2, 5]);
        assert_eq!(plan.kept().layer(1), &[1]);
        assert_eq!(plan.retained_per_layer(), vec![3, 1]);
        assert!(plan.is_executable());
    }

    #[test]
    fn empty_layer_is_not_executable() {
        let model = mlp();
        let keep = [true, true, true, true, true, true, false, false, false];
        let plan = SubmodelPlan::from_mask(model.unit_layout(), &mask_of(&keep));
        assert!(!plan.is_executable());
        assert!(plan.compile(&model).is_none());
    }

    #[test]
    fn compiled_plan_gathers_and_scatters_roundtrip() {
        let model = mlp();
        let keep = [true, false, true, true, false, true, true, false, true];
        let mask = mask_of(&keep);
        let plan = SubmodelPlan::from_mask(model.unit_layout(), &mask);
        let packed = plan.compile(&model).expect("packable");

        // The packed parameter count equals the kept parameters *minus* the
        // full model's cross-connections into dropped units that the mask
        // keeps frozen (they are not unit-owned, so the mask retains them,
        // but they carry no trainable signal and the submodel omits them).
        assert!(packed.packed_len() < model.param_count());
        assert!(packed.packed_len() <= mask.retained_params(model.unit_layout()));

        // Round-trip: gather from a distinctive full vector, scatter into a
        // fresh buffer, gather again — the packed view must be stable. The
        // slice-based gather must agree with the allocating one.
        let full: Vec<f32> = (0..model.param_count()).map(|i| i as f32 + 0.5).collect();
        let mut packed_params = Vec::new();
        packed.gather_params(&full, &mut packed_params);
        let mut packed_into = vec![0.0f32; packed.packed_len()];
        packed.gather_params_into(&full, &mut packed_into);
        assert_eq!(packed_params, packed_into);
        let mut reconstructed = vec![0.0f32; model.param_count()];
        packed.scatter_params(&packed_params, &mut reconstructed);
        let mut again = Vec::new();
        packed.gather_params(&reconstructed, &mut again);
        assert_eq!(packed_params, again);
        // Every scattered coordinate is mask-kept.
        let pmask = mask.param_mask(model.unit_layout());
        for (&i, v) in packed.gather_map().iter().zip(packed_params.iter()) {
            assert_eq!(pmask[i as usize], 1.0, "packed coordinate {i} is masked");
            assert_eq!(reconstructed[i as usize], *v);
        }
    }
}
