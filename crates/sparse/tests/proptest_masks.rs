//! Property-based tests of the mask / pattern / ratio invariants that the
//! whole sparsification pipeline rests on.

use fedlps_nn::mlp::{Mlp, MlpConfig};
use fedlps_nn::model::ModelArch;
use fedlps_sparse::cache::MaskCache;
use fedlps_sparse::pattern::{learnable_pattern, PatternStrategy};
use fedlps_sparse::ratio::{realised_ratio, retained_per_layer, retained_units};
use fedlps_tensor::rng_from_seed;
use proptest::prelude::*;

fn mlp(h0: usize, h1: usize) -> Mlp {
    Mlp::new(MlpConfig {
        input_dim: 5,
        hidden: vec![h0, h1],
        num_classes: 4,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every pattern strategy retains exactly ⌈s·J_l⌉ units per layer (≥ 1).
    #[test]
    fn strategies_hit_the_layerwise_budget(h0 in 2usize..16, h1 in 2usize..12,
                                            ratio in 0.01f64..1.0, seed in 0u64..500) {
        let model = mlp(h0, h1);
        let layout = model.unit_layout();
        let mut rng = rng_from_seed(seed);
        let params = model.init_params(&mut rng);
        let scores: Vec<f32> = (0..layout.total_units()).map(|i| (i as f32 * 0.37).sin()).collect();
        for strategy in [
            PatternStrategy::Random,
            PatternStrategy::Ordered,
            PatternStrategy::RollingOrdered,
            PatternStrategy::Magnitude,
            PatternStrategy::Importance,
        ] {
            let mask = strategy.build_mask(layout, &params, Some(&scores), ratio, seed as usize, &mut rng);
            prop_assert_eq!(mask.retained_per_layer(layout), retained_per_layer(&layout.units_per_layer(), ratio));
        }
    }

    /// Expanding a unit mask never zeroes parameters owned by retained units,
    /// and the retained-parameter count is monotone in the ratio.
    #[test]
    fn retained_params_monotone_in_ratio(h0 in 2usize..12, h1 in 2usize..10,
                                          r1 in 0.01f64..1.0, r2 in 0.01f64..1.0) {
        let model = mlp(h0, h1);
        let layout = model.unit_layout();
        let scores: Vec<f32> = (0..layout.total_units()).map(|i| i as f32).collect();
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let small = learnable_pattern(layout, &scores, lo);
        let large = learnable_pattern(layout, &scores, hi);
        prop_assert!(small.retained_params(layout) <= large.retained_params(layout));
        // Importance-based masks at nested ratios are nested sets.
        prop_assert_eq!(small.intersect(&large), small.clone());
    }

    /// The realised ratio never falls below the requested ratio and never
    /// exceeds 1.
    #[test]
    fn realised_ratio_bounds(layers in prop::collection::vec(1usize..40, 1..5), ratio in 0.0f64..1.0) {
        let realised = realised_ratio(&layers, ratio);
        prop_assert!(realised + 1e-9 >= ratio.min(1.0));
        prop_assert!(realised <= 1.0 + 1e-9);
        for &j in &layers {
            let k = retained_units(j, ratio);
            prop_assert!(k >= 1 && k <= j);
        }
    }

    /// Applying a mask twice is the same as applying it once (idempotence).
    #[test]
    fn mask_application_is_idempotent(h0 in 2usize..12, h1 in 2usize..10,
                                       ratio in 0.05f64..1.0, seed in 0u64..500) {
        let model = mlp(h0, h1);
        let layout = model.unit_layout();
        let mut rng = rng_from_seed(seed);
        let params = model.init_params(&mut rng);
        let mask = PatternStrategy::Random.build_mask(layout, &params, None, ratio, 0, &mut rng);
        let once = mask.apply(layout, &params);
        let twice = mask.apply(layout, &once);
        prop_assert_eq!(once, twice);
    }

    /// A mask served from the [`MaskCache`] is identical to a freshly built
    /// mask for any (seed, ratio) pair, for any equivalent probe ratio: a
    /// lookup hits exactly when the probe extracts the same per-layer
    /// retained-unit counts, and then the cached mask equals the pattern the
    /// builder would derive at the probe ratio.
    #[test]
    fn cached_and_fresh_masks_are_identical(h0 in 2usize..16, h1 in 2usize..12,
                                             ratio in 0.01f64..1.0, probe in 0.01f64..1.0,
                                             client in 0usize..8, seed in 0u64..500) {
        let model = mlp(h0, h1);
        let layout = model.unit_layout();
        let scores: Vec<f32> = (0..layout.total_units())
            .map(|i| ((i as f32) + seed as f32 * 0.13).sin())
            .collect();
        let mut cache = MaskCache::new(layout.units_per_layer());

        // First participation: a compulsory miss, then the build is cached.
        let (built, hit) = cache.get_or_insert_with(client, ratio, || {
            learnable_pattern(layout, &scores, ratio)
        });
        prop_assert!(!hit);
        prop_assert_eq!(&built, &learnable_pattern(layout, &scores, ratio));

        // Probing at any ratio: equal submodel shape => hit with the exact
        // mask a fresh build would produce; different shape => miss.
        let same_shape = cache.key_for(probe) == cache.key_for(ratio);
        match cache.lookup(client, probe) {
            Some(cached) => {
                prop_assert!(same_shape);
                prop_assert_eq!(cached, &learnable_pattern(layout, &scores, probe));
            }
            None => prop_assert!(!same_shape),
        }
        // Other clients never alias this entry.
        prop_assert!(cache.lookup((client + 1) % 8, ratio).is_none());
    }
}
