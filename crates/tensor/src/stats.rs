//! Descriptive statistics used by the sparse-pattern thresholding (quantiles
//! over importance scores) and by the P-UCBV bandit (running means/variances
//! of partition rewards).

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance; 0.0 for slices with fewer than one element.
pub fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Standard deviation (population).
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) of the values using linear interpolation
/// between order statistics, matching `numpy.quantile`'s default behaviour.
///
/// The learnable sparse pattern of Eq. (4) thresholds importance scores at the
/// `(1 - s)`-quantile, so this routine sits on the hot path of every FedLPS
/// local iteration.
///
/// # Panics
/// Panics on an empty slice or a `q` outside `[0, 1]`.
pub fn quantile(values: &[f32], q: f64) -> f32 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile fraction must be in [0,1]"
    );
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (sorted.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    if lower == upper {
        return sorted[lower];
    }
    let frac = (pos - lower as f64) as f32;
    sorted[lower] * (1.0 - frac) + sorted[upper] * frac
}

/// The k-th smallest value (0-based) via a full sort. Used when an exact count
/// of retained units is required rather than an interpolated threshold.
pub fn kth_smallest(values: &[f32], k: usize) -> f32 {
    assert!(!values.is_empty(), "kth_smallest of empty slice");
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    sorted[k.min(sorted.len() - 1)]
}

/// Indices of the `k` largest values, ties broken by smaller index first.
pub fn top_k_indices(values: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| {
        values[b]
            .partial_cmp(&values[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k.min(values.len()));
    idx
}

/// Exponential moving average state used for smoothed accuracy reporting.
#[derive(Debug, Clone, Copy)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>,
}

impl Ema {
    /// Creates an EMA with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EMA alpha must be in (0,1]");
        Self { alpha, value: None }
    }

    /// Feeds an observation and returns the updated smoothed value.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(next);
        next
    }

    /// Current smoothed value, if any observation has been fed.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_known_values() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((variance(&v) - 4.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let v = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        assert!((quantile(&v, 0.25) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0f32, 10.0];
        assert!((quantile(&v, 0.3) - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn quantile_empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn top_k_indices_ordering() {
        let v = [0.1f32, 0.9, 0.5, 0.9];
        assert_eq!(top_k_indices(&v, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&v, 10), vec![1, 3, 2, 0]);
    }

    #[test]
    fn kth_smallest_matches_sorted() {
        let v = [5.0f32, 1.0, 3.0];
        assert_eq!(kth_smallest(&v, 0), 1.0);
        assert_eq!(kth_smallest(&v, 2), 5.0);
        assert_eq!(kth_smallest(&v, 99), 5.0);
    }

    #[test]
    fn ema_behaviour() {
        let mut ema = Ema::new(0.5);
        assert_eq!(ema.value(), None);
        assert_eq!(ema.update(2.0), 2.0);
        assert_eq!(ema.update(4.0), 3.0);
        assert_eq!(ema.value(), Some(3.0));
    }
}
