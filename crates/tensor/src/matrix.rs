//! A minimal row-major dense matrix over `f32`.
//!
//! The matrix type deliberately exposes its backing storage (`as_slice`,
//! `as_mut_slice`) so the neural-network layers can treat weight blocks as
//! contiguous parameter ranges — the FedLPS mask machinery operates on flat
//! parameter vectors and needs stable offsets into them.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::kernels::{self, Density};

/// Row-major dense matrix of `f32` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix with entries drawn i.i.d. from `N(0, std^2)`.
    pub fn random_normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            data.push(crate::rng::sample_normal(rng) * std);
        }
        Self { rows, cols, data }
    }

    /// Identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major backing buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Sets a single element.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        *self.get_mut(r, c) = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// `self * other` using a cache-friendly i-k-j loop ordering.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`matmul`](Self::matmul) writing into a caller-provided zeroed output
    /// (accumulates on top of whatever `out` holds). Runs the blocked kernel
    /// of [`crate::kernels`] with an [`Density::Auto`] density hint;
    /// bit-identical to [`matmul_into_reference`](Self::matmul_into_reference).
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_into_with(other, out, Density::Auto);
    }

    /// [`matmul_into`](Self::matmul_into) with an explicit [`Density`] hint
    /// for `self`'s exact-zero content (wall-clock only — both flavours
    /// produce the same bits; see [`crate::kernels`]).
    pub fn matmul_into_with(&self, other: &Matrix, out: &mut Matrix, density: Density) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!((out.rows, out.cols), (self.rows, other.cols));
        if kernels::resolve(density, &self.data) {
            kernels::matmul::<false>(
                &self.data,
                &other.data,
                &mut out.data,
                self.rows,
                self.cols,
                other.cols,
            );
        } else {
            kernels::matmul::<true>(
                &self.data,
                &other.data,
                &mut out.data,
                self.rows,
                self.cols,
                other.cols,
            );
        }
    }

    /// The pre-blocking scalar i-k-j kernel, retained as the bit-identity
    /// reference for property tests and as the benchmark baseline the
    /// blocked kernels are gated against.
    pub fn matmul_into_reference(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!((out.rows, out.cols), (self.rows, other.cols));
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// `self^T * other`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// [`matmul_tn`](Self::matmul_tn) writing into a caller-provided zeroed
    /// output (accumulates on top of whatever `out` holds). Blocked kernel,
    /// [`Density::Auto`] hint, bit-identical to
    /// [`matmul_tn_into_reference`](Self::matmul_tn_into_reference).
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_tn_into_with(other, out, Density::Auto);
    }

    /// [`matmul_tn_into`](Self::matmul_tn_into) with an explicit [`Density`]
    /// hint for `self`'s exact-zero content.
    pub fn matmul_tn_into_with(&self, other: &Matrix, out: &mut Matrix, density: Density) {
        assert_eq!(self.rows, other.rows, "matmul_tn dimension mismatch");
        assert_eq!((out.rows, out.cols), (self.cols, other.cols));
        if kernels::resolve(density, &self.data) {
            kernels::matmul_tn::<false>(
                &self.data,
                &other.data,
                &mut out.data,
                self.rows,
                self.cols,
                other.cols,
            );
        } else {
            kernels::matmul_tn::<true>(
                &self.data,
                &other.data,
                &mut out.data,
                self.rows,
                self.cols,
                other.cols,
            );
        }
    }

    /// The pre-blocking scalar k-i-j kernel, retained as the bit-identity
    /// reference and benchmark baseline.
    pub fn matmul_tn_into_reference(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, other.rows, "matmul_tn dimension mismatch");
        assert_eq!((out.rows, out.cols), (self.cols, other.cols));
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// `self * other^T`.
    ///
    /// Skips `a == 0.0` operands like [`matmul`](Self::matmul) and
    /// [`matmul_tn`](Self::matmul_tn) do: masked-out activations contribute
    /// nothing, so sparse inputs get cheaper instead of burning multiply-adds
    /// on exact zeros. The packed-submodel execution path relies on all three
    /// variants accumulating only the nonzero terms, in ascending-index
    /// order, to stay bit-identical with the masked-dense path.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// [`matmul_nt`](Self::matmul_nt) writing into a caller-provided output
    /// (overwritten), so hot loops can reuse a [`ScratchPool`](crate::scratch::ScratchPool)
    /// buffer instead of allocating per call. Blocked kernel,
    /// [`Density::Auto`] hint, bit-identical to
    /// [`matmul_nt_into_reference`](Self::matmul_nt_into_reference).
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_nt_into_with(other, out, Density::Auto);
    }

    /// [`matmul_nt_into`](Self::matmul_nt_into) with an explicit [`Density`]
    /// hint for `self`'s exact-zero content.
    pub fn matmul_nt_into_with(&self, other: &Matrix, out: &mut Matrix, density: Density) {
        assert_eq!(self.cols, other.cols, "matmul_nt dimension mismatch");
        assert_eq!((out.rows, out.cols), (self.rows, other.rows));
        if kernels::resolve(density, &self.data) {
            kernels::matmul_nt::<false>(
                &self.data,
                &other.data,
                &mut out.data,
                self.rows,
                self.cols,
                other.rows,
            );
        } else {
            kernels::matmul_nt::<true>(
                &self.data,
                &other.data,
                &mut out.data,
                self.rows,
                self.cols,
                other.rows,
            );
        }
    }

    /// The pre-blocking scalar i-j-k kernel, retained as the bit-identity
    /// reference and benchmark baseline.
    pub fn matmul_nt_into_reference(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_nt dimension mismatch");
        assert_eq!((out.rows, out.cols), (self.rows, other.rows));
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    if a == 0.0 {
                        continue;
                    }
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
    }

    /// Rows of `self` selected by `rows`, in the given order, as a new matrix.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn gather_rows(&self, rows: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(rows.len() * self.cols);
        for &r in rows {
            data.extend_from_slice(self.row(r));
        }
        Matrix::from_vec(rows.len(), self.cols, data)
    }

    /// Columns of `self` selected by `cols`, in the given order, as a new
    /// matrix.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn gather_cols(&self, cols: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * cols.len());
        for r in 0..self.rows {
            let row = self.row(r);
            for &c in cols {
                assert!(c < self.cols, "gather_cols index {c} out of range");
                data.push(row[c]);
            }
        }
        Matrix::from_vec(self.rows, cols.len(), data)
    }

    /// The `rows × cols` sub-block of `self` in one fused pass — equivalent
    /// to `self.gather_rows(rows).gather_cols(cols)` without materializing
    /// the intermediate row-gathered matrix.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn gather_rows_cols(&self, rows: &[usize], cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), cols.len());
        self.gather_rows_cols_into(rows, cols, &mut out);
        out
    }

    /// [`gather_rows_cols`](Self::gather_rows_cols) writing into a
    /// caller-provided matrix (overwritten), so packed hot loops can reuse a
    /// pooled buffer.
    ///
    /// # Panics
    /// Panics on shape mismatch or out-of-range indices.
    pub fn gather_rows_cols_into(&self, rows: &[usize], cols: &[usize], out: &mut Matrix) {
        assert_eq!(
            (out.rows, out.cols),
            (rows.len(), cols.len()),
            "gather_rows_cols_into shape mismatch"
        );
        for (i, &r) in rows.iter().enumerate() {
            let src = self.row(r);
            let dst = &mut out.data[i * cols.len()..(i + 1) * cols.len()];
            for (d, &c) in dst.iter_mut().zip(cols.iter()) {
                *d = src[c];
            }
        }
    }

    /// Adds each row of `src` into the row of `self` named by `rows`
    /// (the inverse of [`gather_rows`](Self::gather_rows), accumulating): the
    /// scatter half of the packed-submodel gather/scatter pair.
    ///
    /// # Panics
    /// Panics on shape mismatch or out-of-range indices.
    pub fn scatter_add_rows(&mut self, rows: &[usize], src: &Matrix) {
        assert_eq!(rows.len(), src.rows, "scatter_add_rows row-count mismatch");
        assert_eq!(self.cols, src.cols, "scatter_add_rows column mismatch");
        for (i, &r) in rows.iter().enumerate() {
            for (dst, &v) in self.row_mut(r).iter_mut().zip(src.row(i).iter()) {
                *dst += v;
            }
        }
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Element-wise (Hadamard) product into a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let id = Matrix::identity(3);
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| (r + 2 * c) as f32);
        let b = Matrix::from_fn(4, 2, |r, c| (r * c + 1) as f32);
        let via_tn = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in via_tn.as_slice().iter().zip(explicit.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-6));
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r as f32) - (c as f32) * 0.5);
        let b = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f32 * 0.1);
        let via_nt = a.matmul_nt(&b);
        let explicit = a.matmul(&b.transpose());
        for (x, y) in via_nt.as_slice().iter().zip(explicit.as_slice()) {
            assert!(approx_eq(*x, *y, 1e-6));
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(5, 2, |r, c| (r * 7 + c * 3) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hadamard_and_scale() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
        let mut c = a.clone();
        c.scale(2.0);
        assert_eq!(c.as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    #[should_panic]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_nt_skips_zero_operands_without_changing_results() {
        // Sparse activations (exact zeros from masking / ReLU) must produce
        // the same output whether or not the zero terms are visited.
        let mut a = Matrix::from_fn(3, 5, |r, c| ((r * 5 + c) as f32 * 0.3).sin());
        for r in 0..3 {
            a.row_mut(r)[1] = 0.0;
            a.row_mut(r)[3] = 0.0;
        }
        let b = Matrix::from_fn(4, 5, |r, c| ((r + c) as f32 * 0.7).cos());
        let via_nt = a.matmul_nt(&b);
        let explicit = a.matmul(&b.transpose());
        assert_eq!(via_nt.as_slice(), explicit.as_slice());
    }

    #[test]
    fn into_variants_match_allocating_variants() {
        let a = Matrix::from_fn(3, 4, |r, c| (r as f32) - 0.3 * c as f32);
        let b = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32 * 0.1);
        let bt = b.transpose();
        let mut out = Matrix::zeros(3, 2);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        let mut out_tn = Matrix::zeros(4, 4);
        a.matmul_tn_into(&a, &mut out_tn);
        assert_eq!(out_tn, a.matmul_tn(&a));
        let mut out_nt = Matrix::zeros(3, 2);
        a.matmul_nt_into(&bt, &mut out_nt);
        assert_eq!(out_nt, a.matmul_nt(&bt));
    }

    #[test]
    fn gather_rows_and_cols_select_in_order() {
        let m = Matrix::from_fn(4, 3, |r, c| (r * 10 + c) as f32);
        let rows = m.gather_rows(&[2, 0]);
        assert_eq!(rows.as_slice(), &[20.0, 21.0, 22.0, 0.0, 1.0, 2.0]);
        let cols = m.gather_cols(&[2, 1]);
        assert_eq!(cols.rows(), 4);
        assert_eq!(cols.row(1), &[12.0, 11.0]);
        // Composition extracts the packed submodel block.
        let block = m.gather_rows(&[1, 3]).gather_cols(&[0, 2]);
        assert_eq!(block.as_slice(), &[10.0, 12.0, 30.0, 32.0]);
        // The fused single-pass gather produces the same block.
        assert_eq!(m.gather_rows_cols(&[1, 3], &[0, 2]), block);
    }

    #[test]
    fn scatter_add_rows_inverts_gather_rows() {
        let m = Matrix::from_fn(4, 3, |r, c| (r + c) as f32);
        let picked = [3, 1];
        let sub = m.gather_rows(&picked);
        let mut acc = Matrix::zeros(4, 3);
        acc.scatter_add_rows(&picked, &sub);
        for &r in &picked {
            assert_eq!(acc.row(r), m.row(r));
        }
        assert_eq!(acc.row(0), &[0.0; 3]);
        acc.scatter_add_rows(&picked, &sub);
        assert_eq!(acc.row(1), &[2.0, 4.0, 6.0], "scatter accumulates");
    }

    #[test]
    #[should_panic]
    fn gather_rows_out_of_range_panics() {
        Matrix::zeros(2, 2).gather_rows(&[2]);
    }

    #[test]
    fn norm_values() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!(approx_eq(a.norm(), 5.0, 1e-6));
        assert!(approx_eq(a.norm_sq(), 25.0, 1e-6));
    }
}
