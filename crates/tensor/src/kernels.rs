//! Blocked, lane-vectorized matmul kernels behind [`Matrix`](crate::Matrix)'s
//! multiply API.
//!
//! # Kernel architecture
//!
//! Every kernel here is a register-blocked rewrite of the reference scalar
//! triple loops retained in `matrix.rs` (`matmul_into_reference` and
//! friends), subject to one non-negotiable rule: **the accumulation order of
//! every output element is exactly the reference order** — `k` strictly
//! ascending, products added one at a time, no reassociation, no FMA
//! contraction, no horizontal sums. Blocking therefore only reshapes the
//! *traversal* (which elements are in registers when), never the per-element
//! arithmetic, so the blocked kernels are bit-identical to the reference and
//! the packed==masked / serial==sharded contracts hold without golden
//! updates. If a future kernel must reassociate (e.g. a true SIMD dot
//! product), it cannot share these entry points: it needs its own opt-in
//! call sites and re-pinned goldens, per the ROADMAP determinism note.
//!
//! Shapes of the three kernels:
//!
//! - `matmul` / `matmul_tn` (accumulate into `out`): the output row is the
//!   vectorization axis. A [`MR`]-row × [`BLK`]-column tile of `out` is held
//!   in `[f32; BLK]` register accumulators, loaded from `out`'s prior
//!   content, and the whole `k` loop streams over it — one load/store of the
//!   output tile per full reduction instead of one per `k` step. Per output
//!   element the terms still arrive in ascending `k`; vectorization is
//!   *across* independent output columns, which commutes with nothing.
//! - `matmul_nt` (overwrite `out`): the reduction axis is contiguous in both
//!   operands, so the kernel runs [`NT_JB`] independent dot-product chains
//!   (one per output column) in parallel registers. Each chain is a strictly
//!   serial `acc += a * b` walk — the per-chain order is untouched; the win
//!   is instruction-level parallelism across chains plus one zero-test per
//!   `a` element serving all [`NT_JB`] outputs instead of one per output.
//!
//! Tails (output columns beyond the last full lane block, rows beyond the
//! last row block) fall through to loops with the same per-element order.
//!
//! # Zero-skipping and the density probe
//!
//! The reference kernels skip `a == 0.0` operands so masked-dense sparse
//! training gets cheaper with sparsity. On fully dense operands that branch
//! is pure overhead, so each kernel is compiled in two const-generic
//! flavours — `SKIP = true` (elide zero terms, the reference semantics) and
//! `SKIP = false` (branch-free) — and [`Density`] selects between them,
//! by default via a cheap strided [`probe`] of the left operand.
//!
//! The two flavours are bit-identical whenever the elided terms only ever
//! add `±0.0` onto an accumulator that is not `-0.0`: all operands finite,
//! and the prior content of `out` free of `-0.0` (the pool hands out
//! `+0.0`-filled buffers, and an accumulator that starts at `+0.0` can never
//! reach `-0.0` under IEEE-754 addition, so both conditions hold on every
//! in-repo call path). The probe can therefore pick either flavour without
//! observable effect; `proptest_kernels.rs` and the unit tests below pin
//! this.

/// Lane width the kernels are written around: 8 × f32 chunks (two 128-bit
/// vectors on the SSE2 baseline, one on AVX targets).
pub const LANE: usize = 8;
/// Output-column block held in registers by the accumulate kernels. One
/// lane: a [`MR`]`×`[`BLK`] f32 tile is 8 baseline vector registers, which
/// leaves room for the operand loads (a 2-lane tile spills).
pub const BLK: usize = LANE;
/// Output rows blocked together by the accumulate kernels.
pub const MR: usize = 4;
/// Independent dot-product chains run in parallel by the NT kernel.
pub const NT_JB: usize = LANE;

/// How a multiply should treat the left operand's exact zeros.
///
/// Both choices produce bit-identical results (see the module docs for the
/// precondition); the hint only moves wall-clock. `Auto` runs a strided
/// [`probe`] over the left operand; packed-execution call sites, whose
/// operands are dense by construction, pass `Dense` to skip even the probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Density {
    /// Probe the left operand and pick a flavour (the default).
    #[default]
    Auto,
    /// Branch-free kernel: visit every term, including exact zeros.
    Dense,
    /// Zero-skipping kernel: elide `a == 0.0` terms (reference semantics).
    Sparse,
}

/// Elements sampled by the [`Density::Auto`] probe.
const PROBE_SAMPLES: usize = 64;
/// A sample with more than one zero per [`PROBE_ZERO_DEN`] elements selects
/// the zero-skipping flavour.
const PROBE_ZERO_DEN: usize = 8;

/// Strided density probe: `true` means "dense enough for the branch-free
/// kernel". Deterministic (fixed sample positions, no randomness).
pub fn probe(a: &[f32]) -> bool {
    if a.is_empty() {
        return true;
    }
    let samples = a.len().min(PROBE_SAMPLES);
    let stride = a.len() / samples;
    let mut zeros = 0usize;
    for s in 0..samples {
        if a[s * stride] == 0.0 {
            zeros += 1;
        }
    }
    zeros * PROBE_ZERO_DEN <= samples
}

/// Resolves a [`Density`] hint against the left operand.
#[inline]
pub(crate) fn resolve(density: Density, a: &[f32]) -> bool {
    match density {
        Density::Auto => probe(a),
        Density::Dense => true,
        Density::Sparse => false,
    }
}

/// Reduction-panel depth: `a` values are repacked into a column-major
/// `[k][row]` stack panel of at most `KC` steps so the micro-kernel reads
/// both operands contiguously (and the transposed kernel loses its strided
/// loads). `MR * KC` f32 = 4 KiB of stack.
pub const KC: usize = 256;

/// The shared accumulate micro-kernel: one `MR×BLK` register tile of `out`,
/// one packed `a` panel (`kc` steps × `MR` rows, `[k][row]` layout), the
/// `BLK`-wide `b` row segments starting at `b_off` with row stride `n`.
/// Terms are added in ascending panel order — the caller feeds panels in
/// ascending `k`, so every output element sees the reference order.
#[inline(always)]
fn accumulate_tile<const SKIP: bool>(
    apanel: &[f32],
    b: &[f32],
    b_off: usize,
    n: usize,
    acc: &mut [[f32; BLK]; MR],
) {
    for (kk, a_step) in apanel.chunks_exact(MR).enumerate() {
        let bv: &[f32; BLK] = b[b_off + kk * n..b_off + kk * n + BLK]
            .try_into()
            .expect("lane");
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let av = a_step[r];
            if SKIP && av == 0.0 {
                continue;
            }
            for (o, &bl) in acc_r.iter_mut().zip(bv.iter()) {
                *o += av * bl;
            }
        }
    }
}

/// Column-tail companion of [`accumulate_tile`]: the same panel walk for the
/// `< BLK` trailing output columns, scalar, same per-element order.
fn accumulate_tail<const SKIP: bool>(
    apanel: &[f32],
    b: &[f32],
    k0: usize,
    n: usize,
    j: usize,
    out: &mut [f32],
    i: usize,
) {
    for (kk, a_step) in apanel.chunks_exact(MR).enumerate() {
        let b_row = &b[(k0 + kk) * n..(k0 + kk + 1) * n];
        for (r, &av) in a_step.iter().enumerate() {
            if SKIP && av == 0.0 {
                continue;
            }
            let out_row = &mut out[(i + r) * n..(i + r + 1) * n];
            for c in j..n {
                out_row[c] += av * b_row[c];
            }
        }
    }
}

/// `out[m×n] += a[m×k] · b[k×n]`, blocked, reference accumulation order.
pub(crate) fn matmul<const SKIP: bool>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    kdim: usize,
    n: usize,
) {
    if SKIP {
        // Sparse flavour = the reference row-walk. A register tile can elide
        // at most BLK terms per zero test, while this walk's single branch
        // elides an entire contiguous n-wide row update (and its dense inner
        // loop auto-vectorizes), so on genuinely sparse left operands the
        // unblocked walk is the faster kernel. Same per-element order.
        for i in 0..m {
            let a_row = &a[i * kdim..(i + 1) * kdim];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[k * n..(k + 1) * n];
                for (o, &bl) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bl;
                }
            }
        }
        return;
    }
    let mut apanel = [0.0f32; MR * KC];
    let mut i = 0;
    while i + MR <= m {
        // Ascending k panels; within a panel, ascending k micro-steps — the
        // per-element accumulation order is exactly the reference order.
        let mut k0 = 0;
        while k0 < kdim {
            let kc = (kdim - k0).min(KC);
            for r in 0..MR {
                let a_row = &a[(i + r) * kdim + k0..(i + r) * kdim + k0 + kc];
                for (kk, &v) in a_row.iter().enumerate() {
                    apanel[kk * MR + r] = v;
                }
            }
            let panel = &apanel[..kc * MR];
            let mut j = 0;
            while j + BLK <= n {
                let mut acc = [[0.0f32; BLK]; MR];
                for (r, acc_r) in acc.iter_mut().enumerate() {
                    acc_r.copy_from_slice(&out[(i + r) * n + j..(i + r) * n + j + BLK]);
                }
                accumulate_tile::<SKIP>(panel, b, k0 * n + j, n, &mut acc);
                for (r, acc_r) in acc.iter().enumerate() {
                    out[(i + r) * n + j..(i + r) * n + j + BLK].copy_from_slice(acc_r);
                }
                j += BLK;
            }
            if j < n {
                accumulate_tail::<SKIP>(panel, b, k0, n, j, out, i);
            }
            k0 += kc;
        }
        i += MR;
    }
    // Row tail: reference i-k-j walk.
    for i in i..m {
        let a_row = &a[i * kdim..(i + 1) * kdim];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (k, &av) in a_row.iter().enumerate() {
            if SKIP && av == 0.0 {
                continue;
            }
            let b_row = &b[k * n..(k + 1) * n];
            for (o, &bl) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bl;
            }
        }
    }
}

/// `out[m×n] += aᵀ · b` with `a` stored `r×m`, `b` stored `r×n` — blocked,
/// reference accumulation order (the zero skip tests `a[k][i]`, matching the
/// reference kernel's per-`(k, i)` skip). Shares [`accumulate_tile`] with
/// [`matmul`]; only the panel packing differs (`a`'s rows are the reduction
/// axis, so packing de-strides the column loads).
pub(crate) fn matmul_tn<const SKIP: bool>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    r: usize,
    m: usize,
    n: usize,
) {
    if SKIP {
        // Sparse flavour = the reference k-i-j walk, for the same reason as
        // [`matmul`]: one branch per `a[k][i]` elides a whole n-wide update.
        for k in 0..r {
            let b_row = &b[k * n..(k + 1) * n];
            for (i, &av) in a[k * m..(k + 1) * m].iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &bl) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bl;
                }
            }
        }
        return;
    }
    let mut apanel = [0.0f32; MR * KC];
    let mut i = 0;
    while i + MR <= m {
        let mut k0 = 0;
        while k0 < r {
            let kc = (r - k0).min(KC);
            for kk in 0..kc {
                let a_step = &a[(k0 + kk) * m + i..(k0 + kk) * m + i + MR];
                apanel[kk * MR..kk * MR + MR].copy_from_slice(a_step);
            }
            let panel = &apanel[..kc * MR];
            let mut j = 0;
            while j + BLK <= n {
                let mut acc = [[0.0f32; BLK]; MR];
                for (rr, acc_r) in acc.iter_mut().enumerate() {
                    acc_r.copy_from_slice(&out[(i + rr) * n + j..(i + rr) * n + j + BLK]);
                }
                accumulate_tile::<SKIP>(panel, b, k0 * n + j, n, &mut acc);
                for (rr, acc_r) in acc.iter().enumerate() {
                    out[(i + rr) * n + j..(i + rr) * n + j + BLK].copy_from_slice(acc_r);
                }
                j += BLK;
            }
            if j < n {
                accumulate_tail::<SKIP>(panel, b, k0, n, j, out, i);
            }
            k0 += kc;
        }
        i += MR;
    }
    for i in i..m {
        for k in 0..r {
            let av = a[k * m + i];
            if SKIP && av == 0.0 {
                continue;
            }
            let b_row = &b[k * n..(k + 1) * n];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bl) in out_row.iter_mut().zip(b_row.iter()) {
                *o += av * bl;
            }
        }
    }
}

/// `out[m×r] = a[m×k] · bᵀ` with `b` stored `r×k` — overwrites `out`.
/// Each output element is a strictly serial ascending-`k` dot product
/// starting from `0.0`; [`NT_JB`] such chains run in parallel registers.
pub(crate) fn matmul_nt<const SKIP: bool>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    kdim: usize,
    r: usize,
) {
    for i in 0..m {
        let a_row = &a[i * kdim..(i + 1) * kdim];
        let mut j = 0;
        while j + NT_JB <= r {
            let b_rows: [&[f32]; NT_JB] =
                core::array::from_fn(|t| &b[(j + t) * kdim..(j + t + 1) * kdim]);
            let mut acc = [0.0f32; NT_JB];
            for (k, &av) in a_row.iter().enumerate() {
                if SKIP && av == 0.0 {
                    continue;
                }
                for (o, b_row) in acc.iter_mut().zip(b_rows.iter()) {
                    *o += av * b_row[k];
                }
            }
            out[i * r + j..i * r + j + NT_JB].copy_from_slice(&acc);
            j += NT_JB;
        }
        for j in j..r {
            let b_row = &b[j * kdim..(j + 1) * kdim];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                if SKIP && av == 0.0 {
                    continue;
                }
                acc += av * bv;
            }
            out[i * r + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn mixed(rows: usize, cols: usize, zero_every: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            if (r * cols + c) % zero_every == 0 {
                0.0
            } else {
                ((r * cols + c) as f32 * 0.37).sin()
            }
        })
    }

    /// Satellite: the zero-skipping and branch-free flavours are the same
    /// computation bit for bit — the skip only ever elides `+= 0.0`.
    #[test]
    fn skip_and_dense_flavours_are_bit_identical() {
        let a = mixed(9, 17, 3);
        let b = mixed(17, 21, 5);
        let bt = b.transpose();
        for density in [Density::Sparse, Density::Dense, Density::Auto] {
            let mut out = Matrix::zeros(9, 21);
            a.matmul_into_with(&b, &mut out, density);
            let mut reference = Matrix::zeros(9, 21);
            a.matmul_into_reference(&b, &mut reference);
            assert_eq!(bits(&out), bits(&reference), "matmul {density:?}");

            let mut out_tn = Matrix::zeros(17, 21);
            a.matmul_tn_into_with(&mixed(9, 21, 4), &mut out_tn, density);
            let mut ref_tn = Matrix::zeros(17, 21);
            a.matmul_tn_into_reference(&mixed(9, 21, 4), &mut ref_tn);
            assert_eq!(bits(&out_tn), bits(&ref_tn), "matmul_tn {density:?}");

            let mut out_nt = Matrix::zeros(9, 21);
            a.matmul_nt_into_with(&bt, &mut out_nt, density);
            let mut ref_nt = Matrix::zeros(9, 21);
            a.matmul_nt_into_reference(&bt, &mut ref_nt);
            assert_eq!(bits(&out_nt), bits(&ref_nt), "matmul_nt {density:?}");
        }
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn probe_classifies_density() {
        assert!(probe(&[1.0; 100]));
        assert!(probe(&[]));
        let mostly_zero: Vec<f32> = (0..100)
            .map(|i| if i % 4 == 0 { 1.0 } else { 0.0 })
            .collect();
        assert!(!probe(&mostly_zero));
        // One zero in 64 dense samples stays under the 1-in-8 threshold.
        let nearly_dense: Vec<f32> = (0..128).map(|i| if i == 0 { 0.0 } else { 2.0 }).collect();
        assert!(probe(&nearly_dense));
    }

    /// Accumulation on prior `out` content is preserved (the blocked tiles
    /// load their accumulators from `out`, they do not start at zero).
    #[test]
    fn blocked_kernels_accumulate_on_prior_output() {
        let a = mixed(5, 6, 4);
        let b = mixed(6, 19, 3);
        let mut out = Matrix::from_fn(5, 19, |r, c| (r + c) as f32 * 0.5);
        let mut reference = out.clone();
        a.matmul_into(&b, &mut out);
        a.matmul_into_reference(&b, &mut reference);
        assert_eq!(bits(&out), bits(&reference));
    }
}
