//! Dense `f32` linear-algebra primitives used throughout the FedLPS reproduction.
//!
//! The neural-network substrate in `fedlps_nn` is written against plain
//! slices and the small [`Matrix`] type defined here, rather than a heavyweight
//! tensor library: every model in the paper (MLP, VGG-style CNN, LSTM) only
//! needs dense mat-mul, element-wise maps and a handful of reductions, and
//! keeping the math in one small crate makes gradient-checking and property
//! testing straightforward.
//!
//! The crate also hosts the deterministic RNG helpers ([`rng`]) and the
//! statistics utilities ([`stats`]) — quantiles, means, variances — that the
//! sparse-pattern and bandit crates rely on.

pub mod init;
pub mod kernels;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod scratch;
pub mod stats;

pub use init::{he_std, xavier_std, Initializer};
pub use kernels::Density;
pub use matrix::Matrix;
pub use rng::{rng_from_seed, split_seed};
pub use scratch::{Arena, ScratchPool};

/// Numerical tolerance used by tests and the finite-difference gradient checker.
pub const EPS: f32 = 1e-5;

/// Absolute-or-relative closeness check used across the workspace's tests.
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-7, 1e-5));
        assert!(!approx_eq(1.0, 1.1, 1e-5));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e6, 1e6 * (1.0 + 1e-6), 1e-5));
        assert!(!approx_eq(1e6, 1e6 * 1.01, 1e-5));
    }
}
