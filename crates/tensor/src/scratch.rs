//! A reusable scratch-buffer pool for transient matrices, plus a flat
//! [`Arena`] for the packed client step.
//!
//! The per-batch forward/backward passes of the neural-network layers need a
//! handful of short-lived matrices (weight blocks, gradient accumulators,
//! re-materialised activations). Allocating them fresh on every minibatch
//! turns the hot loop into an allocator benchmark; [`ScratchPool`] recycles
//! the backing buffers instead. [`with_pool`] exposes one pool per thread so
//! the pure, `&self` model code can borrow scratch space without threading a
//! pool parameter through every call — and without any cross-thread sharing
//! that could perturb the deterministic execution backends.
//!
//! Buffers handed out by [`take`](ScratchPool::take) are always zero-filled,
//! so pooled and freshly-allocated matrices are interchangeable bit for bit.
//!
//! Reuse is size-bucketed: idle buffers live in power-of-two capacity
//! classes, LIFO within each class. A request pops the most recently
//! recycled buffer of its own class (the per-batch model passes cycle
//! through a fixed set of shapes, so this keeps the hot loop touching the
//! same cache-warm allocations), walking up to larger classes only when its
//! own is empty. A large buffer — e.g. the packed client step's flat
//! [`Arena`] — therefore never gets burned on a small request, and a small
//! buffer is never popped for a large request and reallocated (the old
//! plain-LIFO failure mode).

use std::cell::RefCell;

use crate::matrix::Matrix;

/// Number of power-of-two capacity classes (class 63 covers any `usize`).
const CLASSES: usize = 64;

/// The size class of a buffer: `floor(log2(capacity))`, so every buffer in
/// class `c` has capacity in `[2^c, 2^(c+1))`.
fn class_of(capacity: usize) -> usize {
    debug_assert!(capacity > 0);
    (usize::BITS - 1 - capacity.leading_zeros()) as usize
}

/// A pool of `Vec<f32>` buffers re-shaped into matrices (or flat arenas) on
/// demand, with size-bucketed (power-of-two class, LIFO within class) reuse.
#[derive(Debug)]
pub struct ScratchPool {
    buckets: Vec<Vec<Vec<f32>>>,
}

impl Default for ScratchPool {
    fn default() -> Self {
        Self {
            buckets: (0..CLASSES).map(|_| Vec::new()).collect(),
        }
    }
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zero-filled `rows x cols` matrix, reusing a pooled buffer when one
    /// is available.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take_vec(rows * cols))
    }

    /// A zero-filled buffer of `len` elements, reusing a pooled buffer.
    ///
    /// The request's own class is tried first: its top buffer is reused when
    /// it is large enough (same-size take/recycle cycles always hit this
    /// cache-warm path). Otherwise the smallest non-empty larger class
    /// serves the request — every buffer there is guaranteed to fit — and
    /// only when all of those are empty is a fresh buffer allocated.
    pub fn take_vec(&mut self, len: usize) -> Vec<f32> {
        let c = class_of(len.max(1));
        let fits = self.buckets[c]
            .last()
            .is_some_and(|top| top.capacity() >= len);
        let reused = if fits {
            self.buckets[c].pop()
        } else {
            self.buckets[c + 1..]
                .iter_mut()
                .find_map(|bucket| bucket.pop())
        };
        let mut buf = reused.unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a matrix's backing buffer to the pool for reuse.
    pub fn recycle(&mut self, m: Matrix) {
        self.recycle_vec(m.into_vec());
    }

    /// Returns a flat buffer to the pool for reuse.
    pub fn recycle_vec(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.buckets[class_of(buf.capacity())].push(buf);
        }
    }

    /// Number of idle buffers currently held.
    pub fn idle(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Folds every idle buffer of `other` into this pool.
    fn absorb(&mut self, other: ScratchPool) {
        for bucket in other.buckets {
            for buf in bucket {
                self.recycle_vec(buf);
            }
        }
    }
}

thread_local! {
    static POOL: RefCell<ScratchPool> = RefCell::new(ScratchPool::new());
}

/// Runs `f` with this thread's scratch pool.
///
/// Re-entrant: the pool is moved out of the thread-local slot for the
/// duration of `f`, so a nested `with_pool` call (e.g. an architecture whose
/// hot loop composes another pooled model) starts from an empty pool instead
/// of panicking on a second `RefCell` borrow. Buffers a nested call leaves
/// behind are folded back into the outer pool on exit, so nothing leaks.
pub fn with_pool<R>(f: impl FnOnce(&mut ScratchPool) -> R) -> R {
    let mut pool = POOL.with(RefCell::take);
    let result = f(&mut pool);
    POOL.with(|cell| {
        let nested = cell.take();
        pool.absorb(nested);
        cell.replace(pool);
    });
    result
}

/// A flat scratch arena: one backing `Vec<f32>` carved into disjoint
/// zero-filled views.
///
/// The packed client step needs several parameter-sized buffers at once
/// (masked parameters, gradient, packed parameters, packed gradient); an
/// arena replaces those per-step `Vec` allocations with one backing buffer
/// drawn from — and returned to — this thread's [`ScratchPool`]. The arena
/// owns its buffer, so nested [`with_pool`] calls inside the step (every
/// model forward/backward) keep their own pooling undisturbed.
#[derive(Debug, Default)]
pub struct Arena {
    buf: Vec<f32>,
}

impl Arena {
    /// An arena whose backing buffer is drawn from this thread's pool, with
    /// at least `capacity` elements reserved so steady-state re-carving
    /// (e.g. one arena per client step) stops reallocating once the pool
    /// holds a buffer of the working-set size.
    pub fn from_pool(capacity: usize) -> Self {
        Self {
            buf: with_pool(|pool| pool.take_vec(capacity)),
        }
    }

    /// Returns the backing buffer to this thread's pool.
    pub fn release(self) {
        with_pool(|pool| pool.recycle_vec(self.buf));
    }

    /// Carves the arena into `N` disjoint zero-filled views of the given
    /// lengths, resizing the backing buffer once to their sum.
    ///
    /// Each call re-carves the whole arena, invalidating previous views
    /// (the borrow checker enforces this).
    pub fn views<const N: usize>(&mut self, lens: [usize; N]) -> [&mut [f32]; N] {
        let total: usize = lens.iter().sum();
        self.buf.clear();
        self.buf.resize(total, 0.0);
        let mut rest: &mut [f32] = &mut self.buf;
        let mut views: Vec<&mut [f32]> = Vec::with_capacity(N);
        for len in lens {
            let (head, tail) = rest.split_at_mut(len);
            views.push(head);
            rest = tail;
        }
        match views.try_into() {
            Ok(arr) => arr,
            Err(_) => unreachable!("exactly N views are carved"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_matrices() {
        let mut pool = ScratchPool::new();
        let mut m = pool.take(2, 3);
        assert_eq!(m.as_slice(), &[0.0; 6]);
        m.as_mut_slice().fill(7.0);
        pool.recycle(m);
        // The recycled buffer comes back clean even at a different shape.
        let again = pool.take(3, 3);
        assert_eq!(again.as_slice(), &[0.0; 9]);
    }

    #[test]
    fn recycling_reuses_buffers() {
        let mut pool = ScratchPool::new();
        let m = pool.take(4, 4);
        assert_eq!(pool.idle(), 0);
        pool.recycle(m);
        assert_eq!(pool.idle(), 1);
        let _ = pool.take(2, 2);
        assert_eq!(pool.idle(), 0, "the pooled buffer was reused");
    }

    /// Satellite: a large-small-large take sequence must reuse the large
    /// buffer for the second large request. Under the old plain-LIFO pop
    /// the small buffer (recycled last) would be popped and reallocated.
    #[test]
    fn buckets_survive_large_small_large_sequence() {
        let mut pool = ScratchPool::new();
        let large = pool.take_vec(1024);
        let large_ptr = large.as_ptr();
        let small = pool.take_vec(16);
        pool.recycle_vec(large);
        pool.recycle_vec(small); // small was recycled last
        let again = pool.take_vec(1024);
        assert_eq!(
            again.as_ptr(),
            large_ptr,
            "the large request must reuse the large idle buffer"
        );
        // The small buffer is still pooled, and a small request gets it
        // (its own size class, not just any buffer that covers the request).
        assert_eq!(pool.idle(), 1);
        let small_again = pool.take_vec(8);
        assert!(
            small_again.capacity() < 1024,
            "small request picked the small buffer"
        );
    }

    #[test]
    fn small_buffers_are_never_grown_for_large_requests() {
        let mut pool = ScratchPool::new();
        pool.recycle_vec(vec![1.0; 8]);
        pool.recycle_vec(vec![2.0; 64]);
        // Nothing pooled covers 128: the request gets a fresh buffer and
        // both idle buffers stay pooled for their own size classes.
        let grown = pool.take_vec(128);
        assert_eq!(grown.len(), 128);
        assert_eq!(pool.idle(), 2);
        assert!(
            pool.take_vec(1).capacity() <= 8,
            "smallest class serves first"
        );
        assert!(pool.take_vec(33).capacity() <= 64);
    }

    #[test]
    fn same_size_cycles_reuse_the_same_allocation() {
        let mut pool = ScratchPool::new();
        // Odd (non-power-of-two) length: the buffer's capacity class is
        // below the next power of two, and the take must still find it.
        let buf = pool.take_vec(100);
        let ptr = buf.as_ptr();
        pool.recycle_vec(buf);
        let again = pool.take_vec(100);
        assert_eq!(again.as_ptr(), ptr, "steady-state cycle stays hot");
    }

    #[test]
    fn thread_local_pool_is_usable_reentrantly() {
        let outer = with_pool(|pool| {
            let m = pool.take(2, 2);
            pool.recycle(m);
            // A nested call must not panic, and its recycled buffers must
            // survive into the shared pool.
            with_pool(|inner| {
                let m = inner.take(3, 3);
                inner.recycle(m);
            });
            pool.idle()
        });
        assert!(outer >= 1);
        // A later borrow on the same thread sees both pools' buffers.
        with_pool(|pool| assert!(pool.idle() >= 2));
    }

    #[test]
    fn arena_views_are_disjoint_zeroed_and_recycled() {
        let mut arena = Arena::from_pool(4);
        let [a, b, c] = arena.views([3, 0, 5]);
        assert_eq!(a, &[0.0; 3]);
        assert_eq!(b, &[] as &[f32]);
        assert_eq!(c, &[0.0; 5]);
        a.fill(1.0);
        c.fill(2.0);
        assert_eq!(a, &[1.0; 3]);
        assert_eq!(c, &[2.0; 5]);
        // Re-carving zeroes everything again.
        let [d] = arena.views([8]);
        assert_eq!(d, &[0.0; 8]);
        let cap = 8;
        arena.release();
        // The backing buffer went back to this thread's pool.
        with_pool(|pool| {
            assert!(pool.idle() >= 1);
            let reclaimed = pool.take_vec(cap);
            assert_eq!(reclaimed, vec![0.0; cap]);
        });
    }
}
