//! A reusable scratch-buffer pool for transient matrices.
//!
//! The per-batch forward/backward passes of the neural-network layers need a
//! handful of short-lived matrices (weight blocks, gradient accumulators,
//! re-materialised activations). Allocating them fresh on every minibatch
//! turns the hot loop into an allocator benchmark; [`ScratchPool`] recycles
//! the backing buffers instead. [`with_pool`] exposes one pool per thread so
//! the pure, `&self` model code can borrow scratch space without threading a
//! pool parameter through every call — and without any cross-thread sharing
//! that could perturb the deterministic execution backends.
//!
//! Buffers handed out by [`take`](ScratchPool::take) are always zero-filled,
//! so pooled and freshly-allocated matrices are interchangeable bit for bit.

use std::cell::RefCell;

use crate::matrix::Matrix;

/// A last-in-first-out pool of `Vec<f32>` buffers re-shaped into matrices on
/// demand.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Vec<Vec<f32>>,
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zero-filled `rows x cols` matrix, reusing a pooled buffer when one
    /// is available.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0.0);
                Matrix::from_vec(rows, cols, buf)
            }
            None => Matrix::zeros(rows, cols),
        }
    }

    /// Returns a matrix's backing buffer to the pool for reuse.
    pub fn recycle(&mut self, m: Matrix) {
        self.free.push(m.into_vec());
    }

    /// Number of idle buffers currently held.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

thread_local! {
    static POOL: RefCell<ScratchPool> = RefCell::new(ScratchPool::new());
}

/// Runs `f` with this thread's scratch pool.
///
/// Re-entrant: the pool is moved out of the thread-local slot for the
/// duration of `f`, so a nested `with_pool` call (e.g. an architecture whose
/// hot loop composes another pooled model) starts from an empty pool instead
/// of panicking on a second `RefCell` borrow. Buffers a nested call leaves
/// behind are folded back into the outer pool on exit, so nothing leaks.
pub fn with_pool<R>(f: impl FnOnce(&mut ScratchPool) -> R) -> R {
    let mut pool = POOL.with(RefCell::take);
    let result = f(&mut pool);
    POOL.with(|cell| {
        let nested = cell.take();
        pool.free.extend(nested.free);
        cell.replace(pool);
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_matrices() {
        let mut pool = ScratchPool::new();
        let mut m = pool.take(2, 3);
        assert_eq!(m.as_slice(), &[0.0; 6]);
        m.as_mut_slice().fill(7.0);
        pool.recycle(m);
        // The recycled buffer comes back clean even at a different shape.
        let again = pool.take(3, 3);
        assert_eq!(again.as_slice(), &[0.0; 9]);
    }

    #[test]
    fn recycling_reuses_buffers() {
        let mut pool = ScratchPool::new();
        let m = pool.take(4, 4);
        assert_eq!(pool.idle(), 0);
        pool.recycle(m);
        assert_eq!(pool.idle(), 1);
        let _ = pool.take(2, 2);
        assert_eq!(pool.idle(), 0, "the pooled buffer was reused");
    }

    #[test]
    fn thread_local_pool_is_usable_reentrantly() {
        let outer = with_pool(|pool| {
            let m = pool.take(2, 2);
            pool.recycle(m);
            // A nested call must not panic, and its recycled buffers must
            // survive into the shared pool.
            with_pool(|inner| {
                let m = inner.take(3, 3);
                inner.recycle(m);
            });
            pool.idle()
        });
        assert!(outer >= 1);
        // A later borrow on the same thread sees both pools' buffers.
        with_pool(|pool| assert!(pool.idle() >= 2));
    }
}
