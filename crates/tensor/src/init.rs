//! Weight-initialisation schemes for the from-scratch neural networks.

use rand::Rng;

use crate::rng::sample_normal;

/// Xavier/Glorot standard deviation for a layer with the given fan-in/out.
pub fn xavier_std(fan_in: usize, fan_out: usize) -> f32 {
    (2.0 / (fan_in + fan_out).max(1) as f32).sqrt()
}

/// He/Kaiming standard deviation for ReLU layers.
pub fn he_std(fan_in: usize) -> f32 {
    (2.0 / fan_in.max(1) as f32).sqrt()
}

/// Initialisation scheme selector used by the model architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Initializer {
    /// Gaussian with Xavier/Glorot scaling — used for linear / LSTM layers.
    Xavier,
    /// Gaussian with He/Kaiming scaling — used for ReLU conv / dense stacks.
    He,
    /// All zeros — used for biases.
    Zeros,
}

impl Initializer {
    /// Fills `out` with samples appropriate for a layer of the given fan-in/out.
    pub fn fill(self, out: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut impl Rng) {
        match self {
            Initializer::Xavier => {
                let std = xavier_std(fan_in, fan_out);
                for v in out {
                    *v = sample_normal(rng) * std;
                }
            }
            Initializer::He => {
                let std = he_std(fan_in);
                for v in out {
                    *v = sample_normal(rng) * std;
                }
            }
            Initializer::Zeros => {
                for v in out {
                    *v = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn std_formulas() {
        assert!((xavier_std(100, 100) - (2.0f32 / 200.0).sqrt()).abs() < 1e-7);
        assert!((he_std(50) - (2.0f32 / 50.0).sqrt()).abs() < 1e-7);
    }

    #[test]
    fn zero_fan_in_does_not_divide_by_zero() {
        assert!(xavier_std(0, 0).is_finite());
        assert!(he_std(0).is_finite());
    }

    #[test]
    fn initializer_fill_scales() {
        let mut rng = rng_from_seed(5);
        let mut buf = vec![0.0f32; 10_000];
        Initializer::He.fill(&mut buf, 200, 100, &mut rng);
        let var = buf.iter().map(|x| x * x).sum::<f32>() / buf.len() as f32;
        let expected = 2.0 / 200.0;
        assert!((var - expected).abs() < expected * 0.2, "var {var}");

        Initializer::Zeros.fill(&mut buf, 200, 100, &mut rng);
        assert!(buf.iter().all(|&x| x == 0.0));
    }
}
