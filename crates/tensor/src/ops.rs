//! Slice-level vector operations shared by the neural-network layers and the
//! federated-learning aggregation rules.
//!
//! Aggregation in every FL algorithm in this workspace is expressed as a few
//! calls into this module (`axpy`, `scale`, `weighted_mean_into`), which keeps
//! the algorithm crates free of hand-rolled loops and makes the arithmetic
//! easy to property-test.

/// `y += alpha * x` element-wise.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `y *= alpha` element-wise.
pub fn scale(y: &mut [f32], alpha: f32) {
    for v in y {
        *v *= alpha;
    }
}

/// Element-wise product written into `out`.
pub fn hadamard_into(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "hadamard length mismatch");
    assert_eq!(out.len(), a.len(), "hadamard output length mismatch");
    for ((o, x), y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x * y;
    }
}

/// In-place element-wise product `a *= b`.
pub fn hadamard_assign(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "hadamard length mismatch");
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x *= y;
    }
}

/// Dot product of two slices.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean norm.
pub fn norm_sq(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f32]) -> f32 {
    norm_sq(a).sqrt()
}

/// Squared Euclidean distance between two slices.
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dist_sq length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// `out = Σ_i weights[i] * inputs[i]` with the weights normalised to sum to 1.
///
/// This is exactly the FedAvg-style data-size-weighted mean of Eq. (13) in the
/// paper; callers pass the raw `|D_k|` weights and the normalisation happens
/// here.
///
/// # Panics
/// Panics if `inputs` is empty, lengths differ, or all weights are zero.
pub fn weighted_mean_into(out: &mut [f32], inputs: &[&[f32]], weights: &[f64]) {
    assert!(!inputs.is_empty(), "weighted mean of zero inputs");
    assert_eq!(
        inputs.len(),
        weights.len(),
        "weights/inputs length mismatch"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weighted mean requires positive total weight");
    out.fill(0.0);
    for (input, &w) in inputs.iter().zip(weights.iter()) {
        assert_eq!(input.len(), out.len(), "input length mismatch");
        let coeff = (w / total) as f32;
        for (o, &x) in out.iter_mut().zip(input.iter()) {
            *o += coeff * x;
        }
    }
}

/// Clips a gradient vector to a maximum Euclidean norm, in place.
///
/// The paper's Reddit/LSTM configuration uses gradient clipping (following
/// LEAF); returns the scaling factor applied (1.0 when no clipping happened).
pub fn clip_norm(grad: &mut [f32], max_norm: f32) -> f32 {
    let n = norm(grad);
    if n <= max_norm || n == 0.0 {
        return 1.0;
    }
    let factor = max_norm / n;
    scale(grad, factor);
    factor
}

/// Numerically stable softmax of `logits` written into `out`.
pub fn softmax_into(out: &mut [f32], logits: &[f32]) {
    assert_eq!(out.len(), logits.len());
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for (o, &l) in out.iter_mut().zip(logits.iter()) {
        let e = (l - max).exp();
        *o = e;
        sum += e;
    }
    if sum > 0.0 {
        for o in out.iter_mut() {
            *o /= sum;
        }
    }
}

/// Index of the maximum element (first occurrence on ties).
pub fn argmax(values: &[f32]) -> usize {
    let mut best = 0;
    let mut best_val = f32::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_val {
            best_val = v;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 2.0];
        axpy(&mut y, 2.0, &[3.0, 4.0]);
        assert_eq!(y, vec![7.0, 10.0]);
        scale(&mut y, 0.5);
        assert_eq!(y, vec![3.5, 5.0]);
    }

    #[test]
    fn dot_and_norms() {
        assert!(approx_eq(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0, 1e-6));
        assert!(approx_eq(norm(&[3.0, 4.0]), 5.0, 1e-6));
        assert!(approx_eq(dist_sq(&[1.0, 1.0], &[4.0, 5.0]), 25.0, 1e-6));
    }

    #[test]
    fn weighted_mean_matches_manual() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        let mut out = vec![0.0, 0.0];
        weighted_mean_into(&mut out, &[&a, &b], &[3.0, 1.0]);
        assert!(approx_eq(out[0], 0.75, 1e-6));
        assert!(approx_eq(out[1], 0.25, 1e-6));
    }

    #[test]
    fn weighted_mean_of_identical_inputs_is_identity() {
        let a = vec![0.5, -1.5, 2.0];
        let mut out = vec![0.0; 3];
        weighted_mean_into(&mut out, &[&a, &a, &a], &[1.0, 5.0, 0.1]);
        for (o, x) in out.iter().zip(a.iter()) {
            assert!(approx_eq(*o, *x, 1e-6));
        }
    }

    #[test]
    #[should_panic]
    fn weighted_mean_zero_total_panics() {
        let a = vec![1.0];
        let mut out = vec![0.0];
        weighted_mean_into(&mut out, &[&a], &[0.0]);
    }

    #[test]
    fn clip_norm_only_when_needed() {
        let mut g = vec![3.0, 4.0];
        assert_eq!(clip_norm(&mut g, 10.0), 1.0);
        assert_eq!(g, vec![3.0, 4.0]);
        let f = clip_norm(&mut g, 1.0);
        assert!(approx_eq(f, 0.2, 1e-6));
        assert!(approx_eq(norm(&g), 1.0, 1e-6));
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let logits = vec![1000.0, 1001.0, 999.0];
        let mut out = vec![0.0; 3];
        softmax_into(&mut out, &logits);
        assert!(approx_eq(out.iter().sum::<f32>(), 1.0, 1e-5));
        assert!(out.iter().all(|p| p.is_finite() && *p >= 0.0));
        assert_eq!(argmax(&out), 1);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }
}
