//! Deterministic random-number helpers.
//!
//! Every stochastic component in the reproduction (data generation, client
//! selection, weight initialisation, the P-UCBV bandit's sampling step) takes
//! an explicit seed so that experiments are repeatable and the benchmark
//! harness can regenerate the paper's tables deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Builds a [`StdRng`] from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Uses SplitMix64-style mixing so that adjacent `(seed, stream)` pairs give
/// uncorrelated child seeds; this is how the simulator hands each client and
/// each round its own RNG stream.
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E3779B97F4A7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Draws a standard-normal sample using the Box–Muller transform.
///
/// Kept local (instead of `rand_distr::StandardNormal`) in hot inner loops so
/// the initialisation path has no trait-object indirection; `rand_distr` is
/// still used where distribution variety matters (e.g. Dirichlet partitioning).
pub fn sample_normal(rng: &mut impl Rng) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        return r * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

/// Samples an index in `0..weights.len()` proportionally to non-negative weights.
///
/// Falls back to uniform sampling when the weights sum to zero.
pub fn sample_weighted(weights: &[f64], rng: &mut impl Rng) -> usize {
    assert!(!weights.is_empty(), "cannot sample from empty weights");
    let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut t = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        t -= w.max(0.0);
        if t <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Samples `count` distinct indices from `0..n` uniformly without replacement.
///
/// Sparse partial Fisher–Yates: instead of materialising the full `0..n`
/// index vector, only the displaced entries are tracked in a `BTreeMap`, so
/// both memory and (post-draw) work are `O(count)` regardless of `n`. The RNG
/// draw sequence and the returned indices are bit-identical to the dense
/// partial shuffle (`indices.swap(i, j)` over a pre-built vector) for every
/// `(n, count, rng)` — large-population callers rely on that equivalence.
pub fn sample_without_replacement(n: usize, count: usize, rng: &mut impl Rng) -> Vec<usize> {
    let count = count.min(n);
    // `displaced[p]` is the value currently stored at position `p` of the
    // virtual index vector; absent positions still hold their own index.
    let mut displaced: BTreeMap<usize, usize> = BTreeMap::new();
    let mut picks = Vec::with_capacity(count);
    for i in 0..count {
        let j = rng.gen_range(i..n);
        let at_j = displaced.get(&j).copied().unwrap_or(j);
        let at_i = displaced.get(&i).copied().unwrap_or(i);
        // The virtual swap(i, j): position `i` is never read again (all later
        // probes target `i+1..n`), so only position `j` needs recording.
        displaced.insert(j, at_i);
        picks.push(at_j);
    }
    picks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_is_deterministic_and_varies() {
        assert_eq!(split_seed(42, 1), split_seed(42, 1));
        assert_ne!(split_seed(42, 1), split_seed(42, 2));
        assert_ne!(split_seed(42, 1), split_seed(43, 1));
    }

    #[test]
    fn normal_samples_have_reasonable_moments() {
        let mut rng = rng_from_seed(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = rng_from_seed(3);
        let weights = [0.0, 0.0, 1.0];
        for _ in 0..100 {
            assert_eq!(sample_weighted(&weights, &mut rng), 2);
        }
    }

    #[test]
    fn weighted_sampling_zero_weights_falls_back_to_uniform() {
        let mut rng = rng_from_seed(3);
        let weights = [0.0, 0.0, 0.0];
        let mut seen: Vec<usize> = (0..200)
            .map(|_| sample_weighted(&weights, &mut rng))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn sample_without_replacement_is_distinct_and_bounded() {
        let mut rng = rng_from_seed(11);
        let picks = sample_without_replacement(10, 4, &mut rng);
        assert_eq!(picks.len(), 4);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "picks are distinct: {picks:?}");
        assert!(picks.iter().all(|&i| i < 10));
    }

    #[test]
    fn sample_without_replacement_caps_at_population() {
        let mut rng = rng_from_seed(11);
        let picks = sample_without_replacement(3, 10, &mut rng);
        assert_eq!(picks.len(), 3);
    }

    /// The historical dense partial Fisher–Yates the sparse version replaced.
    fn dense_reference(n: usize, count: usize, rng: &mut impl Rng) -> Vec<usize> {
        let count = count.min(n);
        let mut indices: Vec<usize> = (0..n).collect();
        for i in 0..count {
            let j = rng.gen_range(i..n);
            indices.swap(i, j);
        }
        indices.truncate(count);
        indices
    }

    #[test]
    fn sparse_fisher_yates_is_bit_identical_to_the_dense_shuffle() {
        for seed in 0..20 {
            for &(n, count) in &[(1, 1), (5, 5), (10, 4), (64, 64), (257, 19), (1000, 3)] {
                let sparse = sample_without_replacement(n, count, &mut rng_from_seed(seed));
                let dense = dense_reference(n, count, &mut rng_from_seed(seed));
                assert_eq!(sparse, dense, "n={n} count={count} seed={seed}");
            }
        }
    }
}
