//! Property-based bit-identity pins for the blocked matmul kernels.
//!
//! The blocked, lane-vectorized kernels behind `matmul_into`,
//! `matmul_tn_into` and `matmul_nt_into` must be *bit-identical* to the
//! retained reference scalar kernels for every shape (including the
//! lane-tail widths 1, 7, 9, 17 the blocking has to handle as partial
//! tiles), every operand zero density, and every [`Density`] hint — the
//! packed==masked and serial==sharded contracts ride on it. These tests pin
//! that, plus the gather/scatter fusion equalities.

use fedlps_tensor::{rng_from_seed, Density, Matrix};
use proptest::prelude::*;
use rand::Rng;

/// A matrix whose entries are exactly zero with probability `zero_density`.
fn sparse_matrix(rows: usize, cols: usize, zero_density: f64, seed: u64) -> Matrix {
    let mut rng = rng_from_seed(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen_range(0.0f64..1.0) < zero_density {
            0.0
        } else {
            rng.gen_range(-2.0f32..2.0)
        }
    })
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Shapes drawn to hit full tiles, single lanes and every tail class.
const DIMS: [usize; 9] = [1, 2, 7, 8, 9, 16, 17, 32, 33];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked `matmul_into` == reference, all hints, any density.
    #[test]
    fn matmul_blocked_matches_reference(mi in 0usize..DIMS.len(), ki in 0usize..DIMS.len(),
                                        ni in 0usize..DIMS.len(), density in 0.0f64..1.0,
                                        seed in 0u64..1_000_000) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = sparse_matrix(m, k, density, seed);
        let b = sparse_matrix(k, n, density * 0.5, seed ^ 0x9E37);
        let mut reference = Matrix::zeros(m, n);
        a.matmul_into_reference(&b, &mut reference);
        for hint in [Density::Auto, Density::Dense, Density::Sparse] {
            let mut out = Matrix::zeros(m, n);
            a.matmul_into_with(&b, &mut out, hint);
            prop_assert_eq!(bits(&out), bits(&reference), "hint {:?}", hint);
        }
    }

    /// Blocked `matmul_tn_into` == reference, all hints, any density.
    #[test]
    fn matmul_tn_blocked_matches_reference(ri in 0usize..DIMS.len(), mi in 0usize..DIMS.len(),
                                           ni in 0usize..DIMS.len(), density in 0.0f64..1.0,
                                           seed in 0u64..1_000_000) {
        let (r, m, n) = (DIMS[ri], DIMS[mi], DIMS[ni]);
        let a = sparse_matrix(r, m, density, seed);
        let b = sparse_matrix(r, n, density * 0.5, seed ^ 0x51F0);
        let mut reference = Matrix::zeros(m, n);
        a.matmul_tn_into_reference(&b, &mut reference);
        for hint in [Density::Auto, Density::Dense, Density::Sparse] {
            let mut out = Matrix::zeros(m, n);
            a.matmul_tn_into_with(&b, &mut out, hint);
            prop_assert_eq!(bits(&out), bits(&reference), "hint {:?}", hint);
        }
    }

    /// Blocked `matmul_nt_into` == reference, all hints, any density.
    #[test]
    fn matmul_nt_blocked_matches_reference(mi in 0usize..DIMS.len(), ki in 0usize..DIMS.len(),
                                           ri in 0usize..DIMS.len(), density in 0.0f64..1.0,
                                           seed in 0u64..1_000_000) {
        let (m, k, r) = (DIMS[mi], DIMS[ki], DIMS[ri]);
        let a = sparse_matrix(m, k, density, seed);
        let b = sparse_matrix(r, k, density * 0.5, seed ^ 0xC0DE);
        let mut reference = Matrix::zeros(m, r);
        a.matmul_nt_into_reference(&b, &mut reference);
        for hint in [Density::Auto, Density::Dense, Density::Sparse] {
            let mut out = Matrix::zeros(m, r);
            a.matmul_nt_into_with(&b, &mut out, hint);
            prop_assert_eq!(bits(&out), bits(&reference), "hint {:?}", hint);
        }
    }

    /// The accumulate kernels load their register tiles from `out`'s prior
    /// content; accumulation on a pre-filled output must stay bit-identical
    /// to the reference for both accumulate variants.
    #[test]
    fn accumulation_on_prior_output_is_preserved(mi in 0usize..DIMS.len(),
                                                 ki in 0usize..DIMS.len(),
                                                 ni in 0usize..DIMS.len(),
                                                 density in 0.0f64..1.0,
                                                 seed in 0u64..1_000_000) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = sparse_matrix(m, k, density, seed);
        let b = sparse_matrix(k, n, 0.2, seed ^ 0xBEEF);
        // Prior content free of -0.0 (the documented precondition shared by
        // every in-repo call site, whose outputs are pool-zeroed).
        let prior = sparse_matrix(m, n, 0.3, seed ^ 0xF00D);
        let mut reference = prior.clone();
        a.matmul_into_reference(&b, &mut reference);
        let mut out = prior.clone();
        a.matmul_into(&b, &mut out);
        prop_assert_eq!(bits(&out), bits(&reference));

        let at = sparse_matrix(k, m, density, seed ^ 0xAB);
        let mut ref_tn = prior.clone();
        at.matmul_tn_into_reference(&b, &mut ref_tn);
        let mut out_tn = prior.clone();
        at.matmul_tn_into(&b, &mut out_tn);
        prop_assert_eq!(bits(&out_tn), bits(&ref_tn));
    }

    /// Fused `gather_rows_cols` == the composed two-pass gather, and the
    /// gather/scatter pair round-trips exactly.
    #[test]
    fn gather_scatter_fusion_round_trips(rows in 1usize..12, cols in 1usize..12,
                                         seed in 0u64..1_000_000) {
        let m = sparse_matrix(rows, cols, 0.1, seed);
        let mut rng = rng_from_seed(seed ^ 0x6A7);
        let picked_rows: Vec<usize> =
            (0..rows).filter(|_| rng.gen_range(0u32..2) == 1).collect();
        let picked_cols: Vec<usize> =
            (0..cols).filter(|_| rng.gen_range(0u32..2) == 1).collect();

        let fused = m.gather_rows_cols(&picked_rows, &picked_cols);
        let composed = m.gather_rows(&picked_rows).gather_cols(&picked_cols);
        prop_assert_eq!(&fused, &composed);
        let mut into = Matrix::zeros(picked_rows.len(), picked_cols.len());
        m.gather_rows_cols_into(&picked_rows, &picked_cols, &mut into);
        prop_assert_eq!(&into, &fused);

        // Scatter the gathered rows back into a zero matrix: the selected
        // rows reappear exactly, the rest stay zero.
        let sub = m.gather_rows(&picked_rows);
        let mut acc = Matrix::zeros(rows, cols);
        acc.scatter_add_rows(&picked_rows, &sub);
        for r in 0..rows {
            if picked_rows.contains(&r) {
                prop_assert_eq!(acc.row(r), m.row(r));
            } else {
                prop_assert!(acc.row(r).iter().all(|&v| v == 0.0));
            }
        }
    }
}
