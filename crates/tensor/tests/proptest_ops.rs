//! Property-based tests for the tensor primitives.

use fedlps_tensor::{approx_eq, ops, stats, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Multiplying by the identity never changes a matrix.
    #[test]
    fn matmul_identity_is_noop(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let mut rng = fedlps_tensor::rng_from_seed(seed);
        let a = Matrix::random_normal(rows, cols, 1.0, &mut rng);
        let id = Matrix::identity(cols);
        let b = a.matmul(&id);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!(approx_eq(*x, *y, 1e-4));
        }
    }

    /// The transpose is an involution.
    #[test]
    fn transpose_involution(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let mut rng = fedlps_tensor::rng_from_seed(seed);
        let a = Matrix::random_normal(rows, cols, 1.0, &mut rng);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// The weighted mean of identical vectors is that vector, for any positive weights.
    #[test]
    fn weighted_mean_of_identical_inputs(v in prop::collection::vec(-10.0f32..10.0, 1..20),
                                          w1 in 0.1f64..10.0, w2 in 0.1f64..10.0) {
        let mut out = vec![0.0f32; v.len()];
        ops::weighted_mean_into(&mut out, &[&v, &v], &[w1, w2]);
        for (o, x) in out.iter().zip(v.iter()) {
            prop_assert!(approx_eq(*o, *x, 1e-4));
        }
    }

    /// Softmax outputs are a probability distribution for any finite logits.
    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-50.0f32..50.0, 1..12)) {
        let mut probs = vec![0.0f32; logits.len()];
        ops::softmax_into(&mut probs, &logits);
        prop_assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
        prop_assert!(approx_eq(probs.iter().sum::<f32>(), 1.0, 1e-4));
    }

    /// Gradient clipping never increases the norm and never exceeds the cap.
    #[test]
    fn clip_norm_caps_the_norm(mut g in prop::collection::vec(-100.0f32..100.0, 1..30),
                               cap in 0.1f32..10.0) {
        let before = ops::norm(&g);
        ops::clip_norm(&mut g, cap);
        let after = ops::norm(&g);
        prop_assert!(after <= cap + 1e-4);
        prop_assert!(after <= before + 1e-4);
    }

    /// Quantiles are monotone in the fraction and bounded by the extremes.
    #[test]
    fn quantiles_are_monotone(values in prop::collection::vec(-100.0f32..100.0, 1..30),
                              q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = stats::quantile(&values, lo);
        let b = stats::quantile(&values, hi);
        prop_assert!(a <= b + 1e-4);
        let min = values.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(a >= min - 1e-4 && b <= max + 1e-4);
    }
}
