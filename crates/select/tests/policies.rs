//! Behavioural tests of the shipped selection policies, including the
//! regression pinning the uniform policy's draw sequences to the simulator's
//! historical inline sampling (the async-refill `select_refill` item of the
//! ROADMAP).

use fedlps_select::{
    ClientPool, PowerOfChoice, SelectionKind, SelectionPolicy, SelectionTracker, Uniform,
    UtilityBased,
};
use fedlps_tensor::rng::sample_without_replacement;
use fedlps_tensor::rng_from_seed;
use rand::Rng;
use std::collections::BTreeSet;

fn tracker(n: usize) -> SelectionTracker {
    SelectionTracker::new((0..n).map(|k| 1.0 + k as f64).collect())
}

/// An idle pool holding exactly `members` out of `n` clients.
fn pool_of(n: usize, members: &[usize]) -> ClientPool {
    ClientPool::excluding(n, (0..n).filter(|k| !members.contains(k)))
}

/// The uniform policy's draws are bit-identical to the simulator's
/// historical inline sampling (the async-refill regression of the
/// ROADMAP's `select_refill` item).
#[test]
fn uniform_reproduces_the_historical_draw_sequences() {
    let t = tracker(10);
    let mut policy = Uniform;

    // Cohort: partial Fisher–Yates, exactly as the old default
    // `FlAlgorithm::select_clients`.
    let mut a = rng_from_seed(42);
    let mut b = rng_from_seed(42);
    assert_eq!(
        policy.select_cohort(&t, 0, 4, &mut a),
        sample_without_replacement(10, 4, &mut b)
    );

    // Over-selection: sample indices into the ascending idle list,
    // exactly as the old `Simulator::over_select`.
    let chosen = vec![2, 5];
    let mut a = rng_from_seed(7);
    let mut b = rng_from_seed(7);
    let picks = policy.select_extra(&t, 0, &chosen, 3, &mut a);
    let idle: Vec<usize> = (0..10).filter(|k| !chosen.contains(k)).collect();
    let expect: Vec<usize> = sample_without_replacement(idle.len(), 3, &mut b)
        .into_iter()
        .map(|i| idle[i])
        .collect();
    assert_eq!(picks, expect);

    // Refill: one `gen_range` over the idle list, exactly as the old
    // `Simulator::pick_idle`.
    let idle = vec![1, 3, 4, 8];
    let mut a = rng_from_seed(11);
    let mut b = rng_from_seed(11);
    assert_eq!(
        policy.select_refill(&t, 0, &pool_of(10, &idle), &mut a),
        Some(idle[b.gen_range(0..idle.len())])
    );
    assert_eq!(policy.select_refill(&t, 0, &pool_of(10, &[]), &mut a), None);
}

#[test]
fn uniform_extra_consumes_no_rng_when_zero() {
    let t = tracker(6);
    let mut rng = rng_from_seed(3);
    let before = rng.gen::<u64>();
    let mut rng = rng_from_seed(3);
    assert!(Uniform.select_extra(&t, 0, &[1], 0, &mut rng).is_empty());
    assert_eq!(rng.gen::<u64>(), before, "extra=0 must not touch the rng");
}

#[test]
fn utility_exploits_high_loss_fast_clients() {
    // Client latencies 1..=6; give everyone a report so nothing explores.
    let mut t = tracker(6);
    for k in 0..6 {
        t.on_dispatch(k, 0);
    }
    // Client 1: high loss, fast. Client 5: higher loss but 6x slower.
    for (k, loss) in [(0, 0.1), (1, 2.0), (2, 0.2), (3, 0.3), (4, 0.2), (5, 2.5)] {
        t.on_report(k, loss, 1.0);
    }
    let mut policy = UtilityBased {
        exploration: 0.0,
        speed_exponent: 1.0,
    };
    let mut rng = rng_from_seed(1);
    let cohort = policy.select_cohort(&t, 1, 2, &mut rng);
    assert!(
        cohort.contains(&1),
        "high-loss fast client must be exploited, got {cohort:?}"
    );
    assert_eq!(cohort.len(), 2);
}

#[test]
fn utility_reserves_exploration_slots_for_unexplored_clients() {
    let mut t = tracker(8);
    // Explore 4 of 8; the rest have never participated.
    for k in 0..4 {
        t.on_dispatch(k, 0);
        t.on_report(k, 1.0, 1.0);
    }
    let mut policy = UtilityBased {
        exploration: 0.5,
        speed_exponent: 1.0,
    };
    let mut rng = rng_from_seed(5);
    let cohort = policy.select_cohort(&t, 1, 4, &mut rng);
    let fresh = cohort.iter().filter(|&&k| k >= 4).count();
    assert!(fresh >= 2, "half the cohort explores, got {cohort:?}");
    let unique: BTreeSet<usize> = cohort.iter().copied().collect();
    assert_eq!(unique.len(), 4, "no duplicates");
}

#[test]
fn power_of_choice_prefers_lossy_candidates_and_stays_distinct() {
    let mut t = tracker(10);
    for k in 0..10 {
        t.on_dispatch(k, 0);
        t.on_report(k, if k == 9 { 5.0 } else { 0.1 }, 1.0);
    }
    let mut policy = PowerOfChoice { candidates: 10 };
    let mut rng = rng_from_seed(2);
    let cohort = policy.select_cohort(&t, 0, 3, &mut rng);
    assert!(
        cohort.contains(&9),
        "with a full candidate set the lossiest client must win: {cohort:?}"
    );
    let unique: BTreeSet<usize> = cohort.iter().copied().collect();
    assert_eq!(unique.len(), 3);
}

#[test]
fn policies_are_deterministic_given_the_seed() {
    let mut t = tracker(12);
    for k in 0..6 {
        t.on_dispatch(k, 0);
        t.on_report(k, 0.1 * k as f64, 1.0 + k as f64);
    }
    for kind in [
        SelectionKind::Uniform,
        SelectionKind::utility(),
        SelectionKind::power_of_choice(),
    ] {
        let run = |seed: u64| {
            let mut policy = kind.build();
            let mut rng = rng_from_seed(seed);
            let cohort = policy.select_cohort(&t, 0, 4, &mut rng);
            let extra = policy.select_extra(&t, 0, &cohort, 2, &mut rng);
            let refill = policy.select_refill(&t, 0, &pool_of(12, &[6, 7, 8]), &mut rng);
            (cohort, extra, refill)
        };
        assert_eq!(run(9), run(9), "{} must be deterministic", kind.name());
        let (cohort, extra, _) = run(9);
        let all: BTreeSet<usize> = cohort.iter().chain(extra.iter()).copied().collect();
        assert_eq!(
            all.len(),
            cohort.len() + extra.len(),
            "{}: extra must be disjoint from the cohort",
            kind.name()
        );
    }
}

/// Dense full-scan references for the sublinear policies: the historical
/// implementations that materialized the whole population per decision.
/// Bit-equality against them is what "sublinear selection changes no draw"
/// means.
mod dense_reference {
    use super::*;
    use rand::rngs::StdRng;
    use std::cmp::Ordering;

    fn rank_desc(mut pool: Vec<usize>, score: impl Fn(usize) -> Option<f64>) -> Vec<usize> {
        pool.sort_by(|&a, &b| match (score(a), score(b)) {
            (None, None) => a.cmp(&b),
            (None, Some(_)) => Ordering::Less,
            (Some(_), None) => Ordering::Greater,
            (Some(x), Some(y)) => y.total_cmp(&x).then_with(|| a.cmp(&b)),
        });
        pool
    }

    pub(crate) fn utility_pick(
        p: &UtilityBased,
        tracker: &SelectionTracker,
        pool: Vec<usize>,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let score = |k: usize| {
            tracker
                .stats(k)
                .last_loss
                .map(|loss| loss.max(0.0) * tracker.speed(k).powf(p.speed_exponent))
        };
        let count = count.min(pool.len());
        if count == 0 {
            return Vec::new();
        }
        let (unexplored, explored): (Vec<usize>, Vec<usize>) =
            pool.into_iter().partition(|&k| !tracker.explored(k));
        let want_explore = ((p.exploration * count as f64).ceil() as usize).min(count);
        let explore_n = want_explore
            .max(count.saturating_sub(explored.len()))
            .min(unexplored.len())
            .min(count);
        let exploit_n = count - explore_n;
        let mut picked: Vec<usize> = rank_desc(explored, score)
            .into_iter()
            .take(exploit_n)
            .collect();
        picked.extend(
            sample_without_replacement(unexplored.len(), explore_n, rng)
                .into_iter()
                .map(|i| unexplored[i]),
        );
        picked
    }

    pub(crate) fn utility_refill(
        p: &UtilityBased,
        tracker: &SelectionTracker,
        idle: &[usize],
        rng: &mut StdRng,
    ) -> Option<usize> {
        let score = |k: usize| {
            tracker
                .stats(k)
                .last_loss
                .map(|loss| loss.max(0.0) * tracker.speed(k).powf(p.speed_exponent))
        };
        if idle.is_empty() {
            return None;
        }
        if rng.gen_bool(p.exploration.clamp(0.0, 1.0)) {
            return Some(idle[rng.gen_range(0..idle.len())]);
        }
        let unexplored: Vec<usize> = idle
            .iter()
            .copied()
            .filter(|&k| !tracker.explored(k))
            .collect();
        if !unexplored.is_empty() {
            return Some(unexplored[rng.gen_range(0..unexplored.len())]);
        }
        rank_desc(idle.to_vec(), score).first().copied()
    }

    pub(crate) fn poc_pick(
        p: &PowerOfChoice,
        tracker: &SelectionTracker,
        pool: Vec<usize>,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let count = count.min(pool.len());
        if count == 0 {
            return Vec::new();
        }
        let d = if p.candidates == 0 {
            count.saturating_mul(2)
        } else {
            p.candidates
        }
        .max(count)
        .min(pool.len());
        let cands: Vec<usize> = sample_without_replacement(pool.len(), d, rng)
            .into_iter()
            .map(|i| pool[i])
            .collect();
        rank_desc(cands, |k| tracker.stats(k).last_loss)
            .into_iter()
            .take(count)
            .collect()
    }
}

/// A tracker with a mixed history: some clients explored with reports, one
/// dispatched-but-unreported, the rest untouched.
fn mixed_tracker(n: usize, reported: usize) -> SelectionTracker {
    let mut t = tracker(n);
    for k in 0..reported.min(n) {
        t.on_dispatch(k, 0);
        t.on_report(k, 0.3 + 0.17 * k as f64, 1.0 + k as f64);
    }
    if reported < n {
        t.on_dispatch(reported, 1); // explored but never reported
    }
    t
}

/// The sublinear utility policy reproduces the historical full-scan draws
/// exactly — cohort, over-selection and refill — across seeds and tracker
/// states.
#[test]
fn utility_is_bit_identical_to_the_dense_full_scan() {
    for reported in [0, 3, 7, 11] {
        let t = mixed_tracker(12, reported);
        let p = UtilityBased {
            exploration: 0.25,
            speed_exponent: 1.0,
        };
        for seed in 0..10 {
            let mut policy = p;
            let mut a = rng_from_seed(seed);
            let mut b = rng_from_seed(seed);
            let cohort = policy.select_cohort(&t, 0, 5, &mut a);
            let expect = dense_reference::utility_pick(&p, &t, (0..12).collect(), 5, &mut b);
            assert_eq!(cohort, expect, "cohort, reported={reported} seed={seed}");

            let extra = policy.select_extra(&t, 0, &cohort, 3, &mut a);
            let pool: Vec<usize> = (0..12).filter(|k| !cohort.contains(k)).collect();
            let expect = dense_reference::utility_pick(&p, &t, pool, 3, &mut b);
            assert_eq!(extra, expect, "extra, reported={reported} seed={seed}");

            let idle = [1, 4, 6, 9, 10];
            let refill = policy.select_refill(&t, 0, &pool_of(12, &idle), &mut a);
            let expect = dense_reference::utility_refill(&p, &t, &idle, &mut b);
            assert_eq!(refill, expect, "refill, reported={reported} seed={seed}");
        }
    }
}

/// Same regression for power-of-choice.
#[test]
fn power_of_choice_is_bit_identical_to_the_dense_full_scan() {
    for reported in [0, 5, 12] {
        let t = mixed_tracker(12, reported);
        for candidates in [0, 6] {
            let p = PowerOfChoice { candidates };
            for seed in 0..10 {
                let mut policy = p;
                let mut a = rng_from_seed(seed);
                let mut b = rng_from_seed(seed);
                let cohort = policy.select_cohort(&t, 0, 4, &mut a);
                let expect = dense_reference::poc_pick(&p, &t, (0..12).collect(), 4, &mut b);
                assert_eq!(cohort, expect, "cohort d={candidates} seed={seed}");

                let extra = policy.select_extra(&t, 0, &cohort, 2, &mut a);
                let pool: Vec<usize> = (0..12).filter(|k| !cohort.contains(k)).collect();
                let expect = dense_reference::poc_pick(&p, &t, pool, 2, &mut b);
                assert_eq!(extra, expect, "extra d={candidates} seed={seed}");
            }
        }
    }
}

/// Policies stay cheap at registry scale: a million-client lazy tracker,
/// decisions touch only the cohort-sized working set.
#[test]
fn policies_work_against_a_million_client_lazy_tracker() {
    let mut t = SelectionTracker::lazy(1_000_000, Box::new(|k| 1.0 + (k % 7) as f64), 1.0);
    for kind in [
        SelectionKind::Uniform,
        SelectionKind::utility(),
        SelectionKind::power_of_choice(),
    ] {
        let mut policy = kind.build();
        let mut rng = rng_from_seed(13);
        let cohort = policy.select_cohort(&t, 0, 64, &mut rng);
        assert_eq!(cohort.len(), 64, "{}", kind.name());
        let unique: BTreeSet<usize> = cohort.iter().copied().collect();
        assert_eq!(unique.len(), 64, "{}: distinct", kind.name());
        let extra = policy.select_extra(&t, 0, &cohort, 8, &mut rng);
        assert!(extra.iter().all(|k| !cohort.contains(k)), "{}", kind.name());
        let idle = ClientPool::excluding(1_000_000, cohort.iter().copied());
        let refill = policy.select_refill(&t, 0, &idle, &mut rng);
        assert!(
            refill.is_some_and(|k| !cohort.contains(&k)),
            "{}",
            kind.name()
        );
        for &k in &cohort {
            t.on_dispatch(k, 0);
        }
    }
    // Three policies each dispatched one 64-client cohort: at most 192
    // distinct entries out of a million registered clients.
    assert!(
        t.materialized_clients() <= 3 * 64,
        "only dispatched clients materialize, got {}",
        t.materialized_clients()
    );
}

#[test]
fn kind_parses_names_and_roundtrips_serde() {
    assert_eq!(
        SelectionKind::from_name("uniform"),
        Some(SelectionKind::Uniform)
    );
    assert_eq!(
        SelectionKind::from_name("utility"),
        Some(SelectionKind::utility())
    );
    assert_eq!(
        SelectionKind::from_name("power"),
        Some(SelectionKind::power_of_choice())
    );
    assert_eq!(SelectionKind::from_name("bogus"), None);
    for kind in [
        SelectionKind::Uniform,
        SelectionKind::utility(),
        SelectionKind::power_of_choice(),
    ] {
        let json = serde_json::to_string(&kind).unwrap();
        let back: SelectionKind = serde_json::from_str(&json).unwrap();
        assert_eq!(kind, back);
        assert_eq!(kind.build().name(), kind.name());
    }
}
