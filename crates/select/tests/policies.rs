//! Behavioural tests of the shipped selection policies, including the
//! regression pinning the uniform policy's draw sequences to the simulator's
//! historical inline sampling (the async-refill `select_refill` item of the
//! ROADMAP).

use fedlps_select::{
    PowerOfChoice, SelectionKind, SelectionPolicy, SelectionTracker, Uniform, UtilityBased,
};
use fedlps_tensor::rng::sample_without_replacement;
use fedlps_tensor::rng_from_seed;
use rand::Rng;
use std::collections::BTreeSet;

fn tracker(n: usize) -> SelectionTracker {
    SelectionTracker::new((0..n).map(|k| 1.0 + k as f64).collect())
}

/// The uniform policy's draws are bit-identical to the simulator's
/// historical inline sampling (the async-refill regression of the
/// ROADMAP's `select_refill` item).
#[test]
fn uniform_reproduces_the_historical_draw_sequences() {
    let t = tracker(10);
    let mut policy = Uniform;

    // Cohort: partial Fisher–Yates, exactly as the old default
    // `FlAlgorithm::select_clients`.
    let mut a = rng_from_seed(42);
    let mut b = rng_from_seed(42);
    assert_eq!(
        policy.select_cohort(&t, 0, 4, &mut a),
        sample_without_replacement(10, 4, &mut b)
    );

    // Over-selection: sample indices into the ascending idle list,
    // exactly as the old `Simulator::over_select`.
    let chosen = vec![2, 5];
    let mut a = rng_from_seed(7);
    let mut b = rng_from_seed(7);
    let picks = policy.select_extra(&t, 0, &chosen, 3, &mut a);
    let idle: Vec<usize> = (0..10).filter(|k| !chosen.contains(k)).collect();
    let expect: Vec<usize> = sample_without_replacement(idle.len(), 3, &mut b)
        .into_iter()
        .map(|i| idle[i])
        .collect();
    assert_eq!(picks, expect);

    // Refill: one `gen_range` over the idle list, exactly as the old
    // `Simulator::pick_idle`.
    let idle = vec![1, 3, 4, 8];
    let mut a = rng_from_seed(11);
    let mut b = rng_from_seed(11);
    assert_eq!(
        policy.select_refill(&t, 0, &idle, &mut a),
        Some(idle[b.gen_range(0..idle.len())])
    );
    assert_eq!(policy.select_refill(&t, 0, &[], &mut a), None);
}

#[test]
fn uniform_extra_consumes_no_rng_when_zero() {
    let t = tracker(6);
    let mut rng = rng_from_seed(3);
    let before = rng.gen::<u64>();
    let mut rng = rng_from_seed(3);
    assert!(Uniform.select_extra(&t, 0, &[1], 0, &mut rng).is_empty());
    assert_eq!(rng.gen::<u64>(), before, "extra=0 must not touch the rng");
}

#[test]
fn utility_exploits_high_loss_fast_clients() {
    // Client latencies 1..=6; give everyone a report so nothing explores.
    let mut t = tracker(6);
    for k in 0..6 {
        t.on_dispatch(k, 0);
    }
    // Client 1: high loss, fast. Client 5: higher loss but 6x slower.
    for (k, loss) in [(0, 0.1), (1, 2.0), (2, 0.2), (3, 0.3), (4, 0.2), (5, 2.5)] {
        t.on_report(k, loss, 1.0);
    }
    let mut policy = UtilityBased {
        exploration: 0.0,
        speed_exponent: 1.0,
    };
    let mut rng = rng_from_seed(1);
    let cohort = policy.select_cohort(&t, 1, 2, &mut rng);
    assert!(
        cohort.contains(&1),
        "high-loss fast client must be exploited, got {cohort:?}"
    );
    assert_eq!(cohort.len(), 2);
}

#[test]
fn utility_reserves_exploration_slots_for_unexplored_clients() {
    let mut t = tracker(8);
    // Explore 4 of 8; the rest have never participated.
    for k in 0..4 {
        t.on_dispatch(k, 0);
        t.on_report(k, 1.0, 1.0);
    }
    let mut policy = UtilityBased {
        exploration: 0.5,
        speed_exponent: 1.0,
    };
    let mut rng = rng_from_seed(5);
    let cohort = policy.select_cohort(&t, 1, 4, &mut rng);
    let fresh = cohort.iter().filter(|&&k| k >= 4).count();
    assert!(fresh >= 2, "half the cohort explores, got {cohort:?}");
    let unique: BTreeSet<usize> = cohort.iter().copied().collect();
    assert_eq!(unique.len(), 4, "no duplicates");
}

#[test]
fn power_of_choice_prefers_lossy_candidates_and_stays_distinct() {
    let mut t = tracker(10);
    for k in 0..10 {
        t.on_dispatch(k, 0);
        t.on_report(k, if k == 9 { 5.0 } else { 0.1 }, 1.0);
    }
    let mut policy = PowerOfChoice { candidates: 10 };
    let mut rng = rng_from_seed(2);
    let cohort = policy.select_cohort(&t, 0, 3, &mut rng);
    assert!(
        cohort.contains(&9),
        "with a full candidate set the lossiest client must win: {cohort:?}"
    );
    let unique: BTreeSet<usize> = cohort.iter().copied().collect();
    assert_eq!(unique.len(), 3);
}

#[test]
fn policies_are_deterministic_given_the_seed() {
    let mut t = tracker(12);
    for k in 0..6 {
        t.on_dispatch(k, 0);
        t.on_report(k, 0.1 * k as f64, 1.0 + k as f64);
    }
    for kind in [
        SelectionKind::Uniform,
        SelectionKind::utility(),
        SelectionKind::power_of_choice(),
    ] {
        let run = |seed: u64| {
            let mut policy = kind.build();
            let mut rng = rng_from_seed(seed);
            let cohort = policy.select_cohort(&t, 0, 4, &mut rng);
            let extra = policy.select_extra(&t, 0, &cohort, 2, &mut rng);
            let refill = policy.select_refill(&t, 0, &[6, 7, 8], &mut rng);
            (cohort, extra, refill)
        };
        assert_eq!(run(9), run(9), "{} must be deterministic", kind.name());
        let (cohort, extra, _) = run(9);
        let all: BTreeSet<usize> = cohort.iter().chain(extra.iter()).copied().collect();
        assert_eq!(
            all.len(),
            cohort.len() + extra.len(),
            "{}: extra must be disjoint from the cohort",
            kind.name()
        );
    }
}

#[test]
fn kind_parses_names_and_roundtrips_serde() {
    assert_eq!(
        SelectionKind::from_name("uniform"),
        Some(SelectionKind::Uniform)
    );
    assert_eq!(
        SelectionKind::from_name("utility"),
        Some(SelectionKind::utility())
    );
    assert_eq!(
        SelectionKind::from_name("power"),
        Some(SelectionKind::power_of_choice())
    );
    assert_eq!(SelectionKind::from_name("bogus"), None);
    for kind in [
        SelectionKind::Uniform,
        SelectionKind::utility(),
        SelectionKind::power_of_choice(),
    ] {
        let json = serde_json::to_string(&kind).unwrap();
        let back: SelectionKind = serde_json::from_str(&json).unwrap();
        assert_eq!(kind, back);
        assert_eq!(kind.build().name(), kind.name());
    }
}
