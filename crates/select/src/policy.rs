//! The [`SelectionPolicy`] trait and the three shipped policies.
//!
//! The driver consults the active policy at three points — cohort formation,
//! deadline over-selection, async slot refills — all on one deterministic
//! selection RNG stream. Policies never scan the registered population:
//! candidates arrive as a [`ClientPool`] (ascending ids minus a small
//! exclusion set, `O(|excluded|)` memory) and already-observed clients come
//! from the tracker's sparse [`explored_ids`](SelectionTracker::explored_ids)
//! set, so each decision costs `O(cohort + participants)` work regardless of
//! whether the federation registers sixty-four clients or a million.
//!
//! Sublinearity does not change a single draw: pools enumerate the same ids
//! in the same ascending order as the dense candidate vectors they replaced,
//! and every RNG consumption is positional, so selections are bit-identical
//! to the historical full-scan implementations (pinned by this crate's
//! `dense_reference` regression tests).
//!
//! ```
//! use fedlps_select::{ClientPool, SelectionKind, SelectionTracker};
//! use fedlps_tensor::rng_from_seed;
//!
//! let tracker = SelectionTracker::new(vec![1.0, 2.0, 3.0, 4.0]);
//! let mut policy = SelectionKind::Uniform.build();
//! let mut rng = rng_from_seed(7);
//!
//! let cohort = policy.select_cohort(&tracker, 0, 2, &mut rng);
//! assert_eq!(cohort.len(), 2);
//!
//! // Refill candidates: everyone not currently busy.
//! let idle = ClientPool::excluding(tracker.num_clients(), cohort.iter().copied());
//! let refill = policy.select_refill(&tracker, 0, &idle, &mut rng);
//! assert!(refill.is_some_and(|k| !cohort.contains(&k)));
//! ```

use fedlps_tensor::rng::sample_without_replacement;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

use crate::pool::ClientPool;
use crate::stats::SelectionTracker;

/// How the server picks participating clients.
///
/// The driver consults the policy at three points, all on the single
/// deterministic selection RNG stream:
///
/// * [`select_cohort`](Self::select_cohort) — the base cohort of a round (and
///   the initial in-flight set of the async pipeline);
/// * [`select_extra`](Self::select_extra) — deadline-mode over-selection on
///   top of an already-formed cohort;
/// * [`select_refill`](Self::select_refill) — one replacement client for a
///   slot freed by an async arrival or an offline drop.
///
/// Implementations must be pure functions of `(tracker, arguments, rng)`: no
/// interior clocks, no thread-dependent state. That contract is what lets
/// every policy stay bit-identical across `parallelism` settings and
/// execution backends. Implementations should also avoid `O(population)`
/// work and memory — draw positionally against the given [`ClientPool`] /
/// tracker instead of enumerating all clients.
pub trait SelectionPolicy: Send {
    /// Short name used in logs and tables.
    fn name(&self) -> &'static str;

    /// Chooses up to `count` distinct clients for round `round`.
    fn select_cohort(
        &mut self,
        tracker: &SelectionTracker,
        round: usize,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<usize>;

    /// Chooses up to `extra` distinct clients not already in `chosen`
    /// (deadline-mode over-selection). Must not touch `rng` when `extra == 0`.
    fn select_extra(
        &mut self,
        tracker: &SelectionTracker,
        round: usize,
        chosen: &[usize],
        extra: usize,
        rng: &mut StdRng,
    ) -> Vec<usize>;

    /// Chooses one client from the `idle` pool to refill a freed async slot,
    /// or `None` when the pool is empty.
    fn select_refill(
        &mut self,
        tracker: &SelectionTracker,
        round: usize,
        idle: &ClientPool,
        rng: &mut StdRng,
    ) -> Option<usize>;
}

/// Serializable selection-policy configuration (the `FlConfig::selection`
/// knob in `fedlps_sim`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum SelectionKind {
    /// The paper's uniform random selection (bit-identical to the
    /// simulator's historical inline sampling).
    #[default]
    Uniform,
    /// Oort-style utility selection: exploit high recent-loss clients scaled
    /// by the Eq. (14) speed term, explore with the given fraction.
    UtilityBased {
        /// Fraction of each cohort reserved for exploring unexplored clients.
        exploration: f64,
        /// Exponent on the speed term (0 = pure statistical utility).
        speed_exponent: f64,
    },
    /// Power-of-`d`-choices: draw a random candidate set, keep the
    /// highest-loss members.
    PowerOfChoice {
        /// Candidate-set size `d` (0 = auto: twice the requested count).
        candidates: usize,
    },
}

impl SelectionKind {
    /// The Oort-style utility policy with default knobs.
    pub fn utility() -> Self {
        SelectionKind::UtilityBased {
            exploration: 0.2,
            speed_exponent: 1.0,
        }
    }

    /// The power-of-choice policy with an auto-sized candidate set.
    pub fn power_of_choice() -> Self {
        SelectionKind::PowerOfChoice { candidates: 0 }
    }

    /// Short name used in logs and tables.
    pub fn name(&self) -> &'static str {
        match self {
            SelectionKind::Uniform => "uniform",
            SelectionKind::UtilityBased { .. } => "utility",
            SelectionKind::PowerOfChoice { .. } => "power-of-choice",
        }
    }

    /// Parses a policy name as used by `FEDLPS_SELECTION` (default knobs).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "uniform" => Some(SelectionKind::Uniform),
            "utility" | "oort" => Some(Self::utility()),
            "power" | "power-of-choice" => Some(Self::power_of_choice()),
            _ => None,
        }
    }

    /// Instantiates the configured policy.
    pub fn build(&self) -> Box<dyn SelectionPolicy> {
        match *self {
            SelectionKind::Uniform => Box::new(Uniform),
            SelectionKind::UtilityBased {
                exploration,
                speed_exponent,
            } => Box::new(UtilityBased {
                exploration,
                speed_exponent,
            }),
            SelectionKind::PowerOfChoice { candidates } => Box::new(PowerOfChoice { candidates }),
        }
    }
}

/// Orders clients by descending statistical utility with infinite optimism:
/// never-reported clients rank first (by ascending id), then reported clients
/// by descending `score`, ties by ascending id.
fn rank_desc(mut pool: Vec<usize>, score: impl Fn(usize) -> Option<f64>) -> Vec<usize> {
    pool.sort_by(|&a, &b| match (score(a), score(b)) {
        (None, None) => a.cmp(&b),
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => y.total_cmp(&x).then_with(|| a.cmp(&b)),
    });
    pool
}

/// The explored members of a pool, ascending: the tracker's sparse explored
/// set filtered by membership — `O(participants)`, never `O(population)`.
fn explored_members(tracker: &SelectionTracker, pool: &ClientPool) -> Vec<usize> {
    tracker
        .explored_ids()
        .into_iter()
        .filter(|&k| pool.contains(k))
        .collect()
}

/// Uniform random selection — today's (and the paper's) behaviour.
///
/// The RNG draw sequence of each method is kept bit-identical to the
/// simulator's pre-policy inline sampling (partial Fisher–Yates for cohorts
/// and over-selection, one `gen_range` per refill), which is what lets the
/// default configuration reproduce historical traces exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct Uniform;

impl SelectionPolicy for Uniform {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn select_cohort(
        &mut self,
        tracker: &SelectionTracker,
        _round: usize,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        sample_without_replacement(tracker.num_clients(), count, rng)
    }

    fn select_extra(
        &mut self,
        tracker: &SelectionTracker,
        _round: usize,
        chosen: &[usize],
        extra: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        if extra == 0 {
            return Vec::new();
        }
        let idle = ClientPool::excluding(tracker.num_clients(), chosen.iter().copied());
        let take = extra.min(idle.len());
        sample_without_replacement(idle.len(), take, rng)
            .into_iter()
            .map(|i| idle.nth(i))
            .collect()
    }

    fn select_refill(
        &mut self,
        _tracker: &SelectionTracker,
        _round: usize,
        idle: &ClientPool,
        rng: &mut StdRng,
    ) -> Option<usize> {
        if idle.is_empty() {
            None
        } else {
            Some(idle.nth(rng.gen_range(0..idle.len())))
        }
    }
}

/// Oort-style utility selection.
///
/// Exploit: rank the candidate pool by `loss × speed^speed_exponent` (the
/// statistical utility of the client's most recent absorbed report times the
/// Eq. (14) system-speed term) and keep the top. Explore: reserve
/// `ceil(exploration × count)` slots for clients that never participated,
/// drawn uniformly. Never-reported-but-dispatched clients rank with infinite
/// optimism inside the exploit pool, so nobody is starved forever.
///
/// Work per decision is `O(participants + cohort)`: the exploit ranking runs
/// over the tracker's sparse explored set and exploration draws positionally
/// against the (virtual) unexplored pool — the population is never scanned.
#[derive(Debug, Clone, Copy)]
pub struct UtilityBased {
    /// Fraction of each cohort reserved for exploration.
    pub exploration: f64,
    /// Exponent on the speed term.
    pub speed_exponent: f64,
}

impl UtilityBased {
    fn score(&self, tracker: &SelectionTracker, client: usize) -> Option<f64> {
        tracker
            .stats(client)
            .last_loss
            .map(|loss| loss.max(0.0) * tracker.speed(client).powf(self.speed_exponent))
    }

    /// Shared exploit/explore picker over an arbitrary candidate pool.
    fn pick(
        &self,
        tracker: &SelectionTracker,
        pool: &ClientPool,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let count = count.min(pool.len());
        if count == 0 {
            return Vec::new();
        }
        let explored = explored_members(tracker, pool);
        let unexplored = pool.without(explored.iter().copied());
        let want_explore = ((self.exploration * count as f64).ceil() as usize).min(count);
        // Exploration cannot exceed the unexplored pool; exploitation cannot
        // exceed the explored pool — shift slots to whichever side has room.
        let explore_n = want_explore
            .max(count.saturating_sub(explored.len()))
            .min(unexplored.len())
            .min(count);
        let exploit_n = count - explore_n;

        let mut picked: Vec<usize> = rank_desc(explored, |k| self.score(tracker, k))
            .into_iter()
            .take(exploit_n)
            .collect();
        picked.extend(
            sample_without_replacement(unexplored.len(), explore_n, rng)
                .into_iter()
                .map(|i| unexplored.nth(i)),
        );
        picked
    }
}

impl SelectionPolicy for UtilityBased {
    fn name(&self) -> &'static str {
        "utility"
    }

    fn select_cohort(
        &mut self,
        tracker: &SelectionTracker,
        _round: usize,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        self.pick(
            tracker,
            &ClientPool::full(tracker.num_clients()),
            count,
            rng,
        )
    }

    fn select_extra(
        &mut self,
        tracker: &SelectionTracker,
        _round: usize,
        chosen: &[usize],
        extra: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        if extra == 0 {
            return Vec::new();
        }
        let pool = ClientPool::excluding(tracker.num_clients(), chosen.iter().copied());
        self.pick(tracker, &pool, extra, rng)
    }

    fn select_refill(
        &mut self,
        tracker: &SelectionTracker,
        _round: usize,
        idle: &ClientPool,
        rng: &mut StdRng,
    ) -> Option<usize> {
        if idle.is_empty() {
            return None;
        }
        if rng.gen_bool(self.exploration.clamp(0.0, 1.0)) {
            return Some(idle.nth(rng.gen_range(0..idle.len())));
        }
        let explored = explored_members(tracker, idle);
        let unexplored = idle.without(explored.iter().copied());
        if !unexplored.is_empty() {
            return Some(unexplored.nth(rng.gen_range(0..unexplored.len())));
        }
        // Everyone idle has participated, so the idle pool *is* `explored`.
        rank_desc(explored, |k| self.score(tracker, k))
            .first()
            .copied()
    }
}

/// Power-of-`d`-choices selection, biased toward high-loss clients.
///
/// Only the `d` drawn candidates are ever examined, so decisions cost
/// `O(d log d)` independent of the population size.
#[derive(Debug, Clone, Copy)]
pub struct PowerOfChoice {
    /// Candidate-set size `d` (0 = auto: twice the requested count).
    pub candidates: usize,
}

impl PowerOfChoice {
    fn candidate_count(&self, want: usize, pool: usize) -> usize {
        let d = if self.candidates == 0 {
            want.saturating_mul(2)
        } else {
            self.candidates
        };
        d.max(want).min(pool)
    }

    fn loss(tracker: &SelectionTracker, client: usize) -> Option<f64> {
        tracker.stats(client).last_loss
    }

    fn pick(
        &self,
        tracker: &SelectionTracker,
        pool: &ClientPool,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        let count = count.min(pool.len());
        if count == 0 {
            return Vec::new();
        }
        let d = self.candidate_count(count, pool.len());
        let cands: Vec<usize> = sample_without_replacement(pool.len(), d, rng)
            .into_iter()
            .map(|i| pool.nth(i))
            .collect();
        rank_desc(cands, |k| Self::loss(tracker, k))
            .into_iter()
            .take(count)
            .collect()
    }
}

impl SelectionPolicy for PowerOfChoice {
    fn name(&self) -> &'static str {
        "power-of-choice"
    }

    fn select_cohort(
        &mut self,
        tracker: &SelectionTracker,
        _round: usize,
        count: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        self.pick(
            tracker,
            &ClientPool::full(tracker.num_clients()),
            count,
            rng,
        )
    }

    fn select_extra(
        &mut self,
        tracker: &SelectionTracker,
        _round: usize,
        chosen: &[usize],
        extra: usize,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        if extra == 0 {
            return Vec::new();
        }
        let pool = ClientPool::excluding(tracker.num_clients(), chosen.iter().copied());
        self.pick(tracker, &pool, extra, rng)
    }

    fn select_refill(
        &mut self,
        tracker: &SelectionTracker,
        _round: usize,
        idle: &ClientPool,
        rng: &mut StdRng,
    ) -> Option<usize> {
        if idle.is_empty() {
            return None;
        }
        // Power of two choices: two independent uniform probes, keep the one
        // with the higher loss (optimistically infinite when unexplored).
        let a = idle.nth(rng.gen_range(0..idle.len()));
        let b = idle.nth(rng.gen_range(0..idle.len()));
        let winner = match (Self::loss(tracker, a), Self::loss(tracker, b)) {
            (None, _) => a,
            (_, None) => b,
            (Some(x), Some(y)) => {
                if y > x {
                    b
                } else {
                    a
                }
            }
        };
        Some(winner)
    }
}
