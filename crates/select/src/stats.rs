//! Per-client participation and utility statistics backing the selection
//! policies.

use std::collections::BTreeMap;

/// What the selection layer knows about one client.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClientSelectionStats {
    /// Times the client was dispatched (selected into a cohort, over-selected
    /// or refilled), whether or not its update survived.
    pub participations: u64,
    /// Mean training loss from the client's most recent *absorbed* report.
    pub last_loss: Option<f64>,
    /// Observed Eq. (14) latency (seconds) of the most recent absorbed round.
    pub last_latency: Option<f64>,
    /// Round/version at which the client was last dispatched.
    pub last_round: Option<usize>,
}

/// The statistics of a client that was never dispatched nor reported —
/// what [`SelectionTracker::stats`] returns for ids with no sparse entry.
const BLANK_STATS: ClientSelectionStats = ClientSelectionStats {
    participations: 0,
    last_loss: None,
    last_latency: None,
    last_round: None,
};

/// Where a tracker's per-client latency prior comes from.
///
/// The prior is the Eq. (14) cost of training and uploading the full dense
/// model on the client's static device tier — a pure function of the
/// environment, so utilities are well-defined before a client has ever
/// participated.
enum LatencyPrior {
    /// One pre-computed latency per client (the historical representation).
    Dense(Vec<f64>),
    /// Latency computed from the client id on demand; nothing per-client is
    /// stored. Used with lazy fleets, where pre-computing a prior vector
    /// would itself be `O(population)`.
    Lazy(Box<dyn Fn(usize) -> f64 + Send + Sync>),
}

impl std::fmt::Debug for LatencyPrior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatencyPrior::Dense(v) => f.debug_tuple("Dense").field(&v.len()).finish(),
            LatencyPrior::Lazy(_) => f.debug_tuple("Lazy").finish(),
        }
    }
}

/// The statistics store the driver feeds and the policies read.
///
/// Observed statistics are recorded only at event-ordered absorption points,
/// which keeps every policy bit-identical across thread counts. Storage is
/// sparse (`BTreeMap` keyed by client id, lint rule D1): a client occupies
/// memory only once it is dispatched, so the tracker stays `O(participants)`
/// even when it fronts a million-client registry. Reading an absent client
/// yields blank default statistics — exactly what the historical
/// `Vec<ClientSelectionStats>` of defaults held, so the sparse store is
/// observationally identical to the dense one.
#[derive(Debug)]
pub struct SelectionTracker {
    num_clients: usize,
    stats: BTreeMap<usize, ClientSelectionStats>,
    prior: LatencyPrior,
    /// The fastest expected latency: reference for the speed term.
    latency_ref: f64,
}

impl SelectionTracker {
    /// Creates a tracker for `expected_latency.len()` clients with a dense
    /// per-client latency prior.
    pub fn new(expected_latency: Vec<f64>) -> Self {
        assert!(
            expected_latency.iter().all(|l| l.is_finite() && *l > 0.0),
            "expected latencies must be positive and finite"
        );
        let latency_ref = expected_latency
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        Self {
            num_clients: expected_latency.len(),
            stats: BTreeMap::new(),
            prior: LatencyPrior::Dense(expected_latency),
            latency_ref: if latency_ref.is_finite() {
                latency_ref
            } else {
                1.0
            },
        }
    }

    /// Creates a tracker whose latency prior is computed per client id on
    /// demand — nothing `O(population)` is allocated. `latency_ref` is the
    /// latency of the fastest device tier the federation can contain
    /// (the prior must never undercut it, or [`speed`](Self::speed) would
    /// exceed 1; values are clamped rather than trusted).
    pub fn lazy(
        num_clients: usize,
        prior: Box<dyn Fn(usize) -> f64 + Send + Sync>,
        latency_ref: f64,
    ) -> Self {
        assert!(
            latency_ref.is_finite() && latency_ref > 0.0,
            "latency reference must be positive and finite"
        );
        Self {
            num_clients,
            stats: BTreeMap::new(),
            prior: LatencyPrior::Lazy(prior),
            latency_ref,
        }
    }

    /// Number of clients tracked.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Number of clients holding materialized statistics (dispatched at least
    /// once). The population-scale bench asserts on this to pin the
    /// `O(active participants)` memory contract.
    pub fn materialized_clients(&self) -> usize {
        self.stats.len()
    }

    /// The statistics of one client (blank defaults if never dispatched).
    pub fn stats(&self, client: usize) -> &ClientSelectionStats {
        self.stats.get(&client).unwrap_or(&BLANK_STATS)
    }

    /// All per-client participation counts (dispatch counts). Allocates
    /// `O(num_clients)` — callers fronting a lazy population should use
    /// [`explored_ids`](Self::explored_ids) instead.
    pub fn participations(&self) -> Vec<u64> {
        let mut counts = vec![0; self.num_clients];
        for (&k, s) in &self.stats {
            counts[k] = s.participations;
        }
        counts
    }

    /// Ids of every client dispatched at least once, ascending. Sized by the
    /// participants, not the population.
    pub fn explored_ids(&self) -> Vec<usize> {
        self.stats
            .iter()
            .filter(|(_, s)| s.participations > 0)
            .map(|(&k, _)| k)
            .collect()
    }

    /// Records that `client` was handed the model at `round`.
    pub fn on_dispatch(&mut self, client: usize, round: usize) {
        let s = self.stats.entry(client).or_default();
        s.participations += 1;
        s.last_round = Some(round);
    }

    /// Records the statistics of an absorbed report.
    pub fn on_report(&mut self, client: usize, train_loss: f64, latency: f64) {
        let s = self.stats.entry(client).or_default();
        s.last_loss = Some(train_loss);
        s.last_latency = Some(latency);
    }

    /// The Eq. (14) full-model latency prior of a client.
    pub fn expected_latency(&self, client: usize) -> f64 {
        match &self.prior {
            LatencyPrior::Dense(v) => v[client],
            LatencyPrior::Lazy(f) => f(client),
        }
    }

    /// The pessimistic latency of a client: the Eq. (14) full-model prior,
    /// unless the last *observed* round was worse. Observed latencies carry
    /// everything the prior cannot know — availability waits (a dispatch
    /// into a diurnal/burst outage window), retry backoff and retransmission
    /// time on faulty uplinks — so a client just seen waiting out the night
    /// reads as slow until a clean round clears it. Observations *below* the
    /// prior are ignored: submodel rounds are legitimately cheaper than the
    /// full-model prior, and trusting them would double-count the sparse
    /// ratio the utility policies already budget for.
    pub fn pessimistic_latency(&self, client: usize) -> f64 {
        let prior = self.expected_latency(client);
        match self.stats(client).last_latency {
            Some(observed) if observed > prior => observed,
            _ => prior,
        }
    }

    /// The system-speed term in `(0, 1]`: the fastest client scores 1, a
    /// client expected to take `x` times longer scores `1/x`. Uses the
    /// [`pessimistic_latency`](Self::pessimistic_latency), so waits and
    /// retries observed on the last round depress a client's score until it
    /// completes a clean round.
    pub fn speed(&self, client: usize) -> f64 {
        (self.latency_ref / self.pessimistic_latency(client)).min(1.0)
    }

    /// The finite, reportable utility of a client: its last observed training
    /// loss (statistical utility — high-loss clients have the most to teach
    /// the global model) times the system-speed term. Clients that never
    /// reported score 0 here; policies rank them with explicit optimism
    /// instead of a sentinel value, so this number stays JSON-safe.
    pub fn utility(&self, client: usize) -> f64 {
        self.stats(client).last_loss.unwrap_or(0.0).max(0.0) * self.speed(client)
    }

    /// Whether a client has ever been dispatched.
    pub fn explored(&self, client: usize) -> bool {
        self.stats(client).participations > 0
    }

    /// Number of distinct clients dispatched at least once.
    pub fn distinct_participants(&self) -> u64 {
        self.stats.values().filter(|s| s.participations > 0).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_records_dispatches_and_reports() {
        let mut t = SelectionTracker::new(vec![1.0, 2.0, 4.0]);
        assert_eq!(t.num_clients(), 3);
        assert_eq!(t.distinct_participants(), 0);
        t.on_dispatch(1, 0);
        t.on_dispatch(1, 3);
        t.on_report(1, 0.5, 2.2);
        assert_eq!(t.stats(1).participations, 2);
        assert_eq!(t.stats(1).last_round, Some(3));
        assert_eq!(t.stats(1).last_loss, Some(0.5));
        assert_eq!(t.stats(1).last_latency, Some(2.2));
        assert_eq!(t.distinct_participants(), 1);
        assert!(t.explored(1) && !t.explored(0));
        assert_eq!(t.explored_ids(), vec![1]);
        assert_eq!(t.participations(), vec![0, 2, 0]);
    }

    #[test]
    fn speed_is_one_for_the_fastest_and_decays_with_latency() {
        let t = SelectionTracker::new(vec![1.0, 2.0, 4.0]);
        assert_eq!(t.speed(0), 1.0);
        assert_eq!(t.speed(1), 0.5);
        assert_eq!(t.speed(2), 0.25);
        assert_eq!(t.expected_latency(2), 4.0);
    }

    #[test]
    fn observed_waits_depress_speed_until_a_clean_round_clears_them() {
        let mut t = SelectionTracker::new(vec![1.0, 2.0]);
        // A cheap submodel round below the prior is not trusted: the prior
        // already budgets for full-model cost.
        t.on_report(1, 0.5, 0.5);
        assert_eq!(t.pessimistic_latency(1), 2.0);
        assert_eq!(t.speed(1), 0.5);
        // A round inflated by an availability wait (or retry backoff) is:
        // the client reads slow until it completes a clean round.
        t.on_report(1, 0.5, 8.0);
        assert_eq!(t.pessimistic_latency(1), 8.0);
        assert_eq!(t.speed(1), 0.125);
        t.on_report(1, 0.5, 2.0);
        assert_eq!(t.speed(1), 0.5);
    }

    #[test]
    fn utility_is_loss_times_speed_and_json_safe() {
        let mut t = SelectionTracker::new(vec![1.0, 2.0]);
        assert_eq!(t.utility(0), 0.0, "unexplored clients report 0, not inf");
        t.on_report(1, 0.8, 2.0);
        assert!((t.utility(1) - 0.4).abs() < 1e-12);
        assert!(t.utility(1).is_finite());
    }

    #[test]
    fn lazy_tracker_stores_only_touched_clients() {
        let mut t = SelectionTracker::lazy(1_000_000, Box::new(|k| 1.0 + k as f64), 1.0);
        assert_eq!(t.num_clients(), 1_000_000);
        assert_eq!(t.materialized_clients(), 0);
        t.on_dispatch(999_999, 0);
        t.on_report(999_999, 0.5, 3.0);
        t.on_dispatch(7, 1);
        assert_eq!(t.materialized_clients(), 2);
        assert_eq!(t.explored_ids(), vec![7, 999_999]);
        assert_eq!(t.stats(500_000).participations, 0, "absent reads are blank");
        assert_eq!(t.expected_latency(3), 4.0);
        assert_eq!(t.speed(0), 1.0);
    }

    #[test]
    fn sparse_reads_match_the_dense_defaults() {
        // A report without a dispatch must behave exactly as it did with the
        // dense Vec-of-defaults store.
        let mut t = SelectionTracker::new(vec![1.0, 1.0]);
        t.on_report(0, 0.9, 1.5);
        assert_eq!(t.stats(0).participations, 0);
        assert!(
            !t.explored(0),
            "reported-but-never-dispatched stays unexplored"
        );
        assert!(t.explored_ids().is_empty());
        assert_eq!(t.distinct_participants(), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_latency_priors() {
        SelectionTracker::new(vec![1.0, 0.0]);
    }
}
