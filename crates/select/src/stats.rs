//! Per-client participation and utility statistics backing the selection
//! policies.

/// What the selection layer knows about one client.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClientSelectionStats {
    /// Times the client was dispatched (selected into a cohort, over-selected
    /// or refilled), whether or not its update survived.
    pub participations: u64,
    /// Mean training loss from the client's most recent *absorbed* report.
    pub last_loss: Option<f64>,
    /// Observed Eq. (14) latency (seconds) of the most recent absorbed round.
    pub last_latency: Option<f64>,
    /// Round/version at which the client was last dispatched.
    pub last_round: Option<usize>,
}

/// The statistics store the driver feeds and the policies read.
///
/// `expected_latency` is a per-client *prior*: the Eq. (14) cost of training
/// and uploading the full dense model on the client's static device tier. It
/// is a pure function of the environment, so utilities are well-defined
/// before a client has ever participated. Observed statistics are recorded
/// only at event-ordered absorption points, which keeps every policy
/// bit-identical across thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionTracker {
    stats: Vec<ClientSelectionStats>,
    expected_latency: Vec<f64>,
    /// The fastest expected latency: reference for the speed term.
    latency_ref: f64,
}

impl SelectionTracker {
    /// Creates a tracker for `expected_latency.len()` clients.
    pub fn new(expected_latency: Vec<f64>) -> Self {
        assert!(
            expected_latency.iter().all(|l| l.is_finite() && *l > 0.0),
            "expected latencies must be positive and finite"
        );
        let latency_ref = expected_latency
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        Self {
            stats: vec![ClientSelectionStats::default(); expected_latency.len()],
            expected_latency,
            latency_ref: if latency_ref.is_finite() {
                latency_ref
            } else {
                1.0
            },
        }
    }

    /// Number of clients tracked.
    pub fn num_clients(&self) -> usize {
        self.stats.len()
    }

    /// The statistics of one client.
    pub fn stats(&self, client: usize) -> &ClientSelectionStats {
        &self.stats[client]
    }

    /// All per-client participation counts (dispatch counts).
    pub fn participations(&self) -> Vec<u64> {
        self.stats.iter().map(|s| s.participations).collect()
    }

    /// Records that `client` was handed the model at `round`.
    pub fn on_dispatch(&mut self, client: usize, round: usize) {
        let s = &mut self.stats[client];
        s.participations += 1;
        s.last_round = Some(round);
    }

    /// Records the statistics of an absorbed report.
    pub fn on_report(&mut self, client: usize, train_loss: f64, latency: f64) {
        let s = &mut self.stats[client];
        s.last_loss = Some(train_loss);
        s.last_latency = Some(latency);
    }

    /// The Eq. (14) full-model latency prior of a client.
    pub fn expected_latency(&self, client: usize) -> f64 {
        self.expected_latency[client]
    }

    /// The system-speed term in `(0, 1]`: the fastest client scores 1, a
    /// client expected to take `x` times longer scores `1/x`.
    pub fn speed(&self, client: usize) -> f64 {
        (self.latency_ref / self.expected_latency[client]).min(1.0)
    }

    /// The finite, reportable utility of a client: its last observed training
    /// loss (statistical utility — high-loss clients have the most to teach
    /// the global model) times the system-speed term. Clients that never
    /// reported score 0 here; policies rank them with explicit optimism
    /// instead of a sentinel value, so this number stays JSON-safe.
    pub fn utility(&self, client: usize) -> f64 {
        self.stats[client].last_loss.unwrap_or(0.0).max(0.0) * self.speed(client)
    }

    /// Whether a client has ever been dispatched.
    pub fn explored(&self, client: usize) -> bool {
        self.stats[client].participations > 0
    }

    /// Number of distinct clients dispatched at least once.
    pub fn distinct_participants(&self) -> u64 {
        self.stats.iter().filter(|s| s.participations > 0).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_records_dispatches_and_reports() {
        let mut t = SelectionTracker::new(vec![1.0, 2.0, 4.0]);
        assert_eq!(t.num_clients(), 3);
        assert_eq!(t.distinct_participants(), 0);
        t.on_dispatch(1, 0);
        t.on_dispatch(1, 3);
        t.on_report(1, 0.5, 2.2);
        assert_eq!(t.stats(1).participations, 2);
        assert_eq!(t.stats(1).last_round, Some(3));
        assert_eq!(t.stats(1).last_loss, Some(0.5));
        assert_eq!(t.stats(1).last_latency, Some(2.2));
        assert_eq!(t.distinct_participants(), 1);
        assert!(t.explored(1) && !t.explored(0));
    }

    #[test]
    fn speed_is_one_for_the_fastest_and_decays_with_latency() {
        let t = SelectionTracker::new(vec![1.0, 2.0, 4.0]);
        assert_eq!(t.speed(0), 1.0);
        assert_eq!(t.speed(1), 0.5);
        assert_eq!(t.speed(2), 0.25);
        assert_eq!(t.expected_latency(2), 4.0);
    }

    #[test]
    fn utility_is_loss_times_speed_and_json_safe() {
        let mut t = SelectionTracker::new(vec![1.0, 2.0]);
        assert_eq!(t.utility(0), 0.0, "unexplored clients report 0, not inf");
        t.on_report(1, 0.8, 2.0);
        assert!((t.utility(1) - 0.4).abs() < 1e-12);
        assert!(t.utility(1).is_finite());
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_latency_priors() {
        SelectionTracker::new(vec![1.0, 0.0]);
    }
}
