//! Candidate pools that never materialize the population.
//!
//! Selection used to receive its candidates as a dense `Vec<usize>` built by
//! scanning `0..num_clients` — an `O(population)` allocation per decision
//! that defeats the lazy-fleet memory contract. A [`ClientPool`] represents
//! the same ascending id set (`0..num_clients` minus a small exclusion set)
//! in `O(|excluded|)` memory, with positional lookup via [`ClientPool::nth`].
//!
//! Because the pool enumerates the *same ids in the same ascending order* as
//! the dense vector it replaced, positional draws against it (partial
//! Fisher–Yates indices, `gen_range` probes) produce bit-identical selections
//! — the policies' historical RNG sequences are preserved exactly.
//!
//! ```
//! use fedlps_select::ClientPool;
//!
//! // 0..10 minus {2, 5}: the ascending members are [0, 1, 3, 4, 6, 7, 8, 9].
//! let pool = ClientPool::excluding(10, [2, 5]);
//! assert_eq!(pool.len(), 8);
//! assert_eq!(pool.nth(2), 3);
//! assert_eq!(pool.nth(5), 7);
//! assert!(!pool.contains(5) && pool.contains(6));
//! ```

use std::collections::BTreeSet;

/// The ascending id set `0..num_clients` minus an exclusion set, in
/// `O(|excluded|)` memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientPool {
    num_clients: usize,
    /// Excluded ids, all `< num_clients`.
    excluded: BTreeSet<usize>,
}

impl ClientPool {
    /// The full population `0..num_clients`.
    pub fn full(num_clients: usize) -> Self {
        Self {
            num_clients,
            excluded: BTreeSet::new(),
        }
    }

    /// The population minus `excluded` (out-of-range ids are ignored).
    pub fn excluding(num_clients: usize, excluded: impl IntoIterator<Item = usize>) -> Self {
        Self {
            num_clients,
            excluded: excluded.into_iter().filter(|&k| k < num_clients).collect(),
        }
    }

    /// This pool minus additionally-excluded ids.
    pub fn without(&self, ids: impl IntoIterator<Item = usize>) -> Self {
        let mut excluded = self.excluded.clone();
        excluded.extend(ids.into_iter().filter(|&k| k < self.num_clients));
        Self {
            num_clients: self.num_clients,
            excluded,
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.num_clients - self.excluded.len()
    }

    /// Whether the pool has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `client` is a member.
    pub fn contains(&self, client: usize) -> bool {
        client < self.num_clients && !self.excluded.contains(&client)
    }

    /// The `i`-th member in ascending id order (the id a dense
    /// `Vec<usize>` of the members would hold at position `i`). Runs in
    /// `O(|excluded|)`, independent of the population size.
    pub fn nth(&self, i: usize) -> usize {
        assert!(
            i < self.len(),
            "position {i} out of range for pool of {}",
            self.len()
        );
        // Each excluded id at or below the running candidate shifts it up by
        // one; the exclusion set is sorted, so one forward walk settles it.
        let mut id = i;
        for &e in &self.excluded {
            if e <= id {
                id += 1;
            } else {
                break;
            }
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference: the member list as policies used to materialize it.
    fn dense(pool: &ClientPool, n: usize) -> Vec<usize> {
        (0..n).filter(|&k| pool.contains(k)).collect()
    }

    #[test]
    fn nth_matches_the_dense_member_list() {
        for (n, excluded) in [
            (10, vec![]),
            (10, vec![0]),
            (10, vec![9]),
            (10, vec![2, 5]),
            (10, vec![0, 1, 2, 3]),
            (10, vec![6, 7, 8, 9]),
            (1, vec![0]),
            (7, vec![0, 2, 4, 6]),
        ] {
            let pool = ClientPool::excluding(n, excluded.iter().copied());
            let members = dense(&pool, n);
            assert_eq!(pool.len(), members.len(), "excluded {excluded:?}");
            for (i, &id) in members.iter().enumerate() {
                assert_eq!(pool.nth(i), id, "excluded {excluded:?} position {i}");
            }
        }
    }

    #[test]
    fn without_merges_exclusions() {
        let pool = ClientPool::excluding(10, [2, 5]).without([5, 7, 42]);
        assert_eq!(dense(&pool, 10), vec![0, 1, 3, 4, 6, 8, 9]);
        assert_eq!(pool.len(), 7);
    }

    #[test]
    fn full_pool_is_the_identity() {
        let pool = ClientPool::full(5);
        assert_eq!(pool.len(), 5);
        for i in 0..5 {
            assert_eq!(pool.nth(i), i);
        }
    }

    #[test]
    #[should_panic]
    fn nth_rejects_out_of_range_positions() {
        ClientPool::excluding(3, [1]).nth(2);
    }
}
