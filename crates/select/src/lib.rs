//! The client-selection layer of the federation round loop.
//!
//! Which clients train in a round (and which client refills a freed slot in
//! the asynchronous pipeline) used to be hard-wired uniform sampling inside
//! the simulator. This crate makes selection a first-class, pluggable policy:
//! the driver consults a [`SelectionPolicy`] at its three selection points —
//! cohort formation, deadline over-selection and async refills — and feeds the
//! policy's decisions from a [`SelectionTracker`] that accumulates per-client
//! utility/participation statistics as updates are absorbed.
//!
//! Three policies ship with the crate, chosen through the serializable
//! [`SelectionKind`] knob (`FlConfig::selection` in `fedlps_sim`):
//!
//! * [`Uniform`] — the paper's uniform random selection. Its RNG draws are
//!   bit-identical to the simulator's historical inline sampling, so the
//!   default configuration reproduces every pre-policy trace exactly.
//! * [`UtilityBased`] — Oort-style selection: exploit clients with high
//!   statistical utility (recent training loss) scaled by a system-speed term
//!   from the Eq. (14) latency model, while an exploration fraction keeps
//!   sampling unexplored clients.
//! * [`PowerOfChoice`] — loss-biased power-of-`d`-choices: draw a random
//!   candidate set, keep the highest-loss members.
//!
//! Every policy is a deterministic function of `(tracker state, rng stream)`,
//! so runs remain bit-identical across `parallelism` settings and execution
//! backends: the tracker is only mutated at event-ordered points of the
//! driver, never from worker threads.

pub mod policy;
pub mod pool;
pub mod stats;

pub use policy::{PowerOfChoice, SelectionKind, SelectionPolicy, Uniform, UtilityBased};
pub use pool::ClientPool;
pub use stats::{ClientSelectionStats, SelectionTracker};
