//! Population-scale federation: one million registered clients, a
//! cohort-sized memory footprint.
//!
//! ```text
//! cargo run --release --example population_scale
//! ```
//!
//! Cross-device federated learning separates two numbers the small-scale
//! simulators conflate: the *registered population* (how many devices could
//! ever participate) and the *active cohort* (how many train per round). This
//! example makes the population a free axis:
//!
//! * [`DeviceFleet::lazy`] represents a million device profiles as a pure
//!   seeded function of the client id — bit-identical to what
//!   `DeviceFleet::sample` would have drawn at the same seed and size, but
//!   materializing only the profiles actually touched.
//! * [`FlEnv::new_tiled`] registers the lazy fleet over a 64-shard dataset
//!   pool, so data stays `O(shards)` while client ids range over the million.
//! * Every per-client store downstream — bandit arms, client states, cached
//!   masks, selection stats — materializes lazily on first participation.
//! * `eval_every: 0` disables whole-federation evaluation, the one operation
//!   that is intrinsically `O(population)`.
//!
//! The run below touches at most `rounds × clients_per_round` distinct
//! clients; the printed materialization counts stay at that scale — six
//! orders of magnitude below the registered population.

use std::sync::Arc;

use fedlps::prelude::*;

fn main() {
    const POPULATION: usize = 1_000_000;
    const SHARDS: usize = 64;

    // A 64-shard synthetic non-IID dataset pool; client k trains on shard
    // k % SHARDS.
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(SHARDS);
    let data = scenario.build();
    let arch: Arc<dyn ModelArch> = ModelKind::for_dataset(scenario.kind)
        .build(data.input, data.num_classes)
        .into();

    // One million registered devices drawn lazily from the paper's five
    // capability tiers. Same seed + same size as a dense
    // `DeviceFleet::sample(POPULATION, ..)` would use, and any profile read
    // returns the identical tier — without allocating the other 999 936.
    let fleet = DeviceFleet::lazy(POPULATION, HeterogeneityLevel::High, 7);

    let config = FlConfig {
        rounds: 8,
        clients_per_round: 8,
        local_iterations: 3,
        batch_size: 16,
        eval_every: 0, // whole-federation evaluation is O(population): off
        ..FlConfig::default()
    };
    let env = FlEnv::new_tiled(data, fleet, arch, config);

    println!(
        "federation: {} registered clients over {} data shards, model '{}' ({} parameters)",
        env.num_clients(),
        env.data.num_clients(),
        env.arch.name(),
        env.arch.param_count()
    );

    let sim = Simulator::new(env);
    let mut fedlps = FedLps::for_env(sim.env());
    let result = sim.run(&mut fedlps);

    let active_bound = sim.env().config.rounds * sim.env().config.clients_per_round;
    println!("\n== {} at population scale ==", result.algorithm);
    println!("rounds completed:            {}", result.rounds.len());
    println!(
        "total training FLOPs:        {:.2}e9",
        result.total_flops / 1e9
    );
    println!("total simulated time:        {:.2}s", result.total_time);
    println!(
        "mean sparse ratio used:      {:.2}",
        result.mean_sparse_ratio()
    );

    println!("\nmaterialized per-client state (bound: {active_bound} possible participants):");
    println!(
        "  device profiles:           {:>6} of {POPULATION}",
        sim.env().fleet.materialized_profiles()
    );
    println!(
        "  bandit arms:               {:>6} of {POPULATION}",
        fedlps.materialized_arms()
    );
    println!(
        "  client training states:    {:>6} of {POPULATION}",
        fedlps.materialized_clients()
    );
    println!(
        "  cached masks:              {:>6} of {POPULATION}",
        fedlps.mask_cache().map_or(0, |c| c.len())
    );

    assert!(sim.env().fleet.materialized_profiles() <= active_bound);
    assert!(fedlps.materialized_clients() <= active_bound);
    println!("\nO(active) contract holds: the population never materialized.");
}
