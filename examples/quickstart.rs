//! Quickstart: train FedLPS on a small synthetic non-IID federation with a
//! heterogeneous device fleet and print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Nine environment variables support CI's determinism gate (and general
//! scripting): `FEDLPS_PARALLELISM` sets the round-loop shard count
//! (default 1 = serial, 0 = all cores), `FEDLPS_ROUND_MODE` picks the
//! execution semantics (`sync` = the default synchronous barrier,
//! `deadline` = budgeted rounds with over-selection, `async` =
//! staleness-aware asynchronous rounds; `examples/straggler_rounds.rs`
//! compares all three), `FEDLPS_SELECTION` picks the client-selection policy
//! (`uniform` = the default, `utility` = Oort-style utility selection,
//! `power` = power-of-choice; see `examples/utility_selection.rs`),
//! `FEDLPS_BACKEND` picks the execution backend (`auto` | `serial` |
//! `threadpool`), `FEDLPS_PACKED` toggles physically packed submodel
//! execution (`1` = packed, the default; `0` = masked-dense),
//! `FEDLPS_TOPOLOGY` picks the aggregation topology (`flat` = the default
//! direct uploads, `two-tier` = zone aggregators; see
//! `examples/hierarchical_fleet.rs`), `FEDLPS_AVAILABILITY` picks the
//! device-availability model (`iid` = the default per-dispatch coin flip,
//! `diurnal` = seeded day/night waves, `burst` = zone-correlated outage
//! windows; see `examples/diurnal_fleet.rs`), `FEDLPS_QUORUM` sets the
//! cohort quorum fraction in `(0, 1]` (default 1.0 = full barrier) and
//! `FEDLPS_METRICS_JSON` names a file to which the full `RunResult` is
//! written as JSON. Runs at any parallelism level, on any backend, with
//! packing on or off, under either topology and under any availability
//! model are bit-identical for the same seed *in every mode and under every
//! policy*, which the CI matrix enforces by diffing the JSON of
//! serial/sharded and packed/masked runs across modes, policies, topologies
//! and availability models.

use fedlps::prelude::*;

fn main() {
    // 1. A synthetic MNIST-like federation: 16 clients, pathological non-IID
    //    (2 classes per client), with devices sampled from the paper's five
    //    capability tiers.
    // Panic on a set-but-unparsable value: a silent fall-back to serial
    // would make CI's determinism gate compare two identical serial runs.
    let parallelism: usize = match std::env::var("FEDLPS_PARALLELISM") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("FEDLPS_PARALLELISM must be a shard count, got {v:?}")),
        Err(_) => 1,
    };
    // Same contract for the round mode: an unknown value must not silently
    // fall back to the synchronous default.
    let round_mode = match std::env::var("FEDLPS_ROUND_MODE") {
        Ok(v) => match v.as_str() {
            "sync" | "synchronous" => RoundMode::Synchronous,
            "deadline" => RoundMode::deadline(0.004, 2),
            "async" | "asynchronous" => RoundMode::asynchronous(4, 0.6),
            other => panic!("FEDLPS_ROUND_MODE must be sync|deadline|async, got {other:?}"),
        },
        Err(_) => RoundMode::Synchronous,
    };
    // ... and for the selection policy and execution backend.
    let selection = match std::env::var("FEDLPS_SELECTION") {
        Ok(v) => SelectionKind::from_name(&v)
            .unwrap_or_else(|| panic!("FEDLPS_SELECTION must be uniform|utility|power, got {v:?}")),
        Err(_) => SelectionKind::Uniform,
    };
    let backend = match std::env::var("FEDLPS_BACKEND") {
        Ok(v) => BackendKind::from_name(&v)
            .unwrap_or_else(|| panic!("FEDLPS_BACKEND must be auto|serial|threadpool, got {v:?}")),
        Err(_) => BackendKind::Auto,
    };
    let packed_execution = match std::env::var("FEDLPS_PACKED") {
        Ok(v) => match v.as_str() {
            "1" | "on" | "true" => true,
            "0" | "off" | "false" => false,
            other => panic!("FEDLPS_PACKED must be 0|1, got {other:?}"),
        },
        Err(_) => true,
    };
    let topology = match std::env::var("FEDLPS_TOPOLOGY") {
        Ok(v) => Topology::from_name(&v)
            .unwrap_or_else(|| panic!("FEDLPS_TOPOLOGY must be flat|two-tier, got {v:?}")),
        Err(_) => Topology::Flat,
    };
    let availability = match std::env::var("FEDLPS_AVAILABILITY") {
        Ok(v) => AvailabilityModel::from_name(&v)
            .unwrap_or_else(|| panic!("FEDLPS_AVAILABILITY must be iid|diurnal|burst, got {v:?}")),
        Err(_) => AvailabilityModel::Iid,
    };
    let quorum: f64 = match std::env::var("FEDLPS_QUORUM") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("FEDLPS_QUORUM must be a fraction in (0, 1], got {v:?}")),
        Err(_) => 1.0,
    };
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(16);
    let fl_config = FlConfig {
        rounds: 20,
        clients_per_round: 5,
        local_iterations: 5,
        batch_size: 20,
        eval_every: 2,
        parallelism,
        round_mode,
        selection,
        backend,
        packed_execution,
        topology,
        availability,
        quorum,
        ..FlConfig::default()
    };
    let env = FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, fl_config);

    println!(
        "federation: {} clients, {} classes, model '{}' with {} parameters",
        env.num_clients(),
        env.data.num_classes,
        env.arch.name(),
        env.arch.param_count()
    );

    // 2. Run FedLPS: learnable importance-driven sparse patterns + P-UCBV
    //    adaptive sparse ratios.
    let sim = Simulator::new(env);
    let mut fedlps = fedlps::core::FedLps::for_env(sim.env());
    let result = sim.run(&mut fedlps);

    // 3. Report what the paper's Table I reports: mean personalized accuracy,
    //    total FLOPs and total simulated time.
    println!("\n== {} on {} ==", result.algorithm, result.dataset);
    println!(
        "final mean personalized accuracy: {:.2}%",
        result.final_accuracy * 100.0
    );
    println!(
        "best accuracy observed:           {:.2}%",
        result.best_accuracy * 100.0
    );
    println!(
        "total training FLOPs:             {:.2}e9",
        result.total_flops / 1e9
    );
    println!(
        "total simulated time:             {:.2}s",
        result.total_time
    );
    println!(
        "mean sparse ratio used:           {:.2}",
        result.mean_sparse_ratio()
    );
    println!(
        "round-loop parallelism:           {} shard(s)",
        sim.env().config.effective_parallelism()
    );
    println!(
        "round mode:                       {}",
        sim.env().config.round_mode.name()
    );
    println!(
        "selection policy:                 {}",
        sim.env().config.selection.name()
    );
    println!(
        "execution backend:                {}",
        sim.env().config.backend.name()
    );
    println!(
        "submodel execution:               {}",
        if sim.env().config.packed_execution {
            "packed (physically small submodels)"
        } else {
            "masked-dense"
        }
    );
    println!(
        "aggregation topology:             {}",
        sim.env().config.topology.name()
    );
    println!(
        "availability model:               {}",
        sim.env().config.availability.name()
    );
    if sim.env().config.quorum < 1.0 {
        println!(
            "cohort quorum:                    {:.2} ({} early closes, {} drops)",
            sim.env().config.quorum,
            result.total_quorum_closes(),
            result.total_straggler_drops()
        );
    }
    if let Some(cache) = fedlps.mask_cache() {
        println!(
            "mask cache:                       {} hits / {} misses ({:.0}% hit rate, {:.0}% after round 3)",
            cache.hits(),
            cache.misses(),
            cache.hit_rate() * 100.0,
            result.mask_cache_hit_rate_from(3) * 100.0
        );
    }

    println!("\nper-client sparse ratios proposed by P-UCBV after training:");
    for (k, ratio) in fedlps.proposed_ratios().iter().enumerate() {
        let cap = sim.env().capability(k);
        println!("  client {k:>2}: capability {cap:>6.4} -> ratio {ratio:.3}");
    }

    // Machine-readable trace for CI's determinism gate.
    if let Ok(path) = std::env::var("FEDLPS_METRICS_JSON") {
        let json = serde_json::to_string(&result).expect("RunResult serializes");
        std::fs::write(&path, json).expect("metrics JSON is writable");
        println!("\nwrote metrics JSON to {path}");
    }
}
