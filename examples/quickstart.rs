//! Quickstart: train FedLPS on a small synthetic non-IID federation with a
//! heterogeneous device fleet and print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fedlps::prelude::*;

fn main() {
    // 1. A synthetic MNIST-like federation: 16 clients, pathological non-IID
    //    (2 classes per client), with devices sampled from the paper's five
    //    capability tiers.
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(16);
    let fl_config = FlConfig {
        rounds: 20,
        clients_per_round: 5,
        local_iterations: 5,
        batch_size: 20,
        eval_every: 2,
        ..FlConfig::default()
    };
    let env = FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, fl_config);

    println!(
        "federation: {} clients, {} classes, model '{}' with {} parameters",
        env.num_clients(),
        env.data.num_classes,
        env.arch.name(),
        env.arch.param_count()
    );

    // 2. Run FedLPS: learnable importance-driven sparse patterns + P-UCBV
    //    adaptive sparse ratios.
    let sim = Simulator::new(env);
    let mut fedlps = fedlps::core::FedLps::for_env(sim.env());
    let result = sim.run(&mut fedlps);

    // 3. Report what the paper's Table I reports: mean personalized accuracy,
    //    total FLOPs and total simulated time.
    println!("\n== {} on {} ==", result.algorithm, result.dataset);
    println!(
        "final mean personalized accuracy: {:.2}%",
        result.final_accuracy * 100.0
    );
    println!(
        "best accuracy observed:           {:.2}%",
        result.best_accuracy * 100.0
    );
    println!(
        "total training FLOPs:             {:.2}e9",
        result.total_flops / 1e9
    );
    println!(
        "total simulated time:             {:.2}s",
        result.total_time
    );
    println!(
        "mean sparse ratio used:           {:.2}",
        result.mean_sparse_ratio()
    );

    println!("\nper-client sparse ratios proposed by P-UCBV after training:");
    for (k, ratio) in fedlps.proposed_ratios().iter().enumerate() {
        let cap = sim.env().capabilities()[k];
        println!("  client {k:>2}: capability {cap:>6.4} -> ratio {ratio:.3}");
    }
}
