//! Straggler-tolerant rounds: the same heterogeneous federation under the
//! three execution semantics of the event-driven runtime, side by side.
//!
//! Synchronous rounds pay Eq. (18)'s straggler tax — the 1/16-tier devices
//! gate every round. Deadline rounds over-select and cut the stragglers
//! loose; async rounds absorb updates as they arrive with a staleness
//! discount. Both reach the same accuracy in far less *virtual* time, which
//! is exactly the time-to-accuracy axis of the paper's Figures 4-5.
//!
//! ```text
//! cargo run --release --example straggler_rounds
//! ```

use fedlps::core::FedLps;
use fedlps::prelude::*;

fn run_once(mode: RoundMode) -> RunResult {
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(64);
    let fl_config = FlConfig {
        rounds: 12,
        clients_per_round: 8,
        local_iterations: 4,
        batch_size: 16,
        eval_every: 2,
        ..FlConfig::default()
    }
    .with_round_mode(mode);
    let env = FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, fl_config);
    let sim = Simulator::new(env);
    let mut algo = FedLps::for_env(sim.env());
    sim.run(&mut algo)
}

fn main() {
    // Probe the synchronous baseline first: its worst round sizes the
    // deadline budget (half the straggler-gated round time).
    let sync = run_once(RoundMode::Synchronous);
    let worst_round = sync.rounds.iter().map(|r| r.round_time).fold(0.0, f64::max);
    let deadline = run_once(RoundMode::deadline(worst_round * 0.5, 8));
    let async_run = run_once(RoundMode::asynchronous(4, 0.6));

    // A target every mode reaches: 95% of the weakest best accuracy.
    let target = 0.95
        * sync
            .best_accuracy
            .min(deadline.best_accuracy)
            .min(async_run.best_accuracy);

    println!("FedLPS on a 64-client high-heterogeneity fleet (tiers 1 .. 1/16)");
    println!(
        "time-to-accuracy target: {:.1}% mean personalized accuracy\n",
        target * 100.0
    );
    println!(
        "{:<10} {:>9} {:>12} {:>10} {:>8} {:>10}",
        "mode", "acc (%)", "time (s)", "tta (s)", "drops", "staleness"
    );
    for (name, result) in [
        ("sync", &sync),
        ("deadline", &deadline),
        ("async", &async_run),
    ] {
        println!(
            "{:<10} {:>9.2} {:>12.3} {:>10} {:>8} {:>10.2}",
            name,
            result.final_accuracy * 100.0,
            result.total_time,
            result
                .time_to_accuracy(target)
                .map(|t| format!("{t:.3}"))
                .unwrap_or_else(|| "never".into()),
            result.total_straggler_drops(),
            result.mean_staleness(),
        );
    }

    println!(
        "\ndeadline budget: {:.3}s (half the worst synchronous round of {:.3}s)",
        worst_round * 0.5,
        worst_round
    );
    println!(
        "async staleness histogram (updates absorbed at staleness s): {:?}",
        async_run.staleness_histogram()
    );
    println!(
        "\nExpected shape: all three modes land comparable accuracy, but the \
         deadline and async runs cross the target in a fraction of the \
         synchronous virtual time because no round waits for a 1/16-tier \
         straggler to finish."
    );
}
