//! System-heterogeneity scenario: compare FedLPS against a dense baseline
//! (FedAvg) and a width-scaling baseline (HeteroFL) as the device fleet gets
//! more heterogeneous — the workload behind the paper's Figures 7 and 8.
//!
//! ```text
//! cargo run --release --example heterogeneous_fleet
//! ```

use fedlps::baselines::registry::baseline_by_name;
use fedlps::core::FedLps;
use fedlps::prelude::*;

fn run_once(level: HeterogeneityLevel, method: &str) -> RunResult {
    let scenario = ScenarioConfig::small(DatasetKind::Cifar10Like).with_clients(12);
    let fl_config = FlConfig {
        rounds: 12,
        clients_per_round: 4,
        local_iterations: 4,
        batch_size: 16,
        eval_every: 3,
        ..FlConfig::default()
    };
    let env = FlEnv::from_scenario(&scenario, level, fl_config);
    let sim = Simulator::new(env);
    if method == "FedLPS" {
        let mut algo = FedLps::for_env(sim.env());
        sim.run(&mut algo)
    } else {
        let mut algo = baseline_by_name(method).expect("unknown baseline");
        sim.run(&mut *algo)
    }
}

fn main() {
    println!("accuracy / simulated time as system heterogeneity grows (cifar10-like)\n");
    println!(
        "{:<8} {:<10} {:>10} {:>12} {:>14}",
        "level", "method", "acc (%)", "time (s)", "FLOPs (1e9)"
    );
    for level in [
        HeterogeneityLevel::Low,
        HeterogeneityLevel::Median,
        HeterogeneityLevel::High,
    ] {
        for method in ["FedAvg", "HeteroFL", "FedLPS"] {
            let result = run_once(level, method);
            println!(
                "{:<8} {:<10} {:>10.2} {:>12.2} {:>14.2}",
                level.name(),
                method,
                result.final_accuracy * 100.0,
                result.total_time,
                result.total_flops / 1e9
            );
        }
        println!();
    }
    println!(
        "Expected shape (as in the paper): the dense baseline's time explodes with \
         heterogeneity because stragglers train the full model, the width-scaling \
         baseline trades accuracy for speed, and FedLPS keeps both accuracy and time \
         roughly stable by adapting each client's sparse ratio."
    );
}
