//! Statistical-heterogeneity scenario: pathological non-IID data where every
//! client only holds two classes. Compares FedLPS's personalized sparse models
//! against a conventional shared model (FedAvg) and two personalized dense
//! baselines (Ditto, FedPer), and prints the per-client accuracy spread.
//!
//! ```text
//! cargo run --release --example personalization
//! ```

use fedlps::baselines::registry::baseline_by_name;
use fedlps::core::FedLps;
use fedlps::prelude::*;

fn main() {
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(12);
    let fl_config = FlConfig {
        rounds: 15,
        clients_per_round: 4,
        local_iterations: 5,
        batch_size: 20,
        eval_every: 5,
        ..FlConfig::default()
    };
    let env = FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, fl_config);
    println!(
        "non-IID federation: every client holds ~2 of {} classes\n",
        env.data.num_classes
    );

    // FedLPS with per-client evaluation.
    let sim = Simulator::new(env);
    let mut fedlps = FedLps::for_env(sim.env());
    let fedlps_result = sim.run(&mut fedlps);
    let per_client: Vec<f64> = (0..sim.env().num_clients())
        .map(|k| fedlps.evaluate_client(sim.env(), k).accuracy)
        .collect();

    println!("{:<10} {:>10} {:>14}", "method", "acc (%)", "FLOPs (1e9)");
    for name in ["FedAvg", "Ditto", "FedPer"] {
        let mut algo = baseline_by_name(name).unwrap();
        let result = Simulator::new(FlEnv::from_scenario(
            &ScenarioConfig::small(DatasetKind::MnistLike).with_clients(12),
            HeterogeneityLevel::High,
            sim.env().config,
        ))
        .run(&mut *algo);
        println!(
            "{:<10} {:>10.2} {:>14.2}",
            name,
            result.final_accuracy * 100.0,
            result.total_flops / 1e9
        );
    }
    println!(
        "{:<10} {:>10.2} {:>14.2}",
        "FedLPS",
        fedlps_result.final_accuracy * 100.0,
        fedlps_result.total_flops / 1e9
    );

    println!("\nper-client personalized accuracy under FedLPS:");
    for (k, acc) in per_client.iter().enumerate() {
        let ratio = fedlps.client_state(k).last_ratio;
        println!(
            "  client {k:>2}: accuracy {:>6.2}%  (last sparse ratio {:.2})",
            acc * 100.0,
            if ratio > 0.0 { ratio } else { f64::NAN }
        );
    }
}
