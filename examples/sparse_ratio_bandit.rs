//! P-UCBV in isolation: watch the per-client sparse-ratio decisions adapt to a
//! synthetic environment where accuracy gains saturate with the ratio while
//! cost keeps growing — the trade-off the bandit is designed to learn.
//!
//! ```text
//! cargo run --release --example sparse_ratio_bandit
//! ```

use fedlps::bandit::pucbv::{PUcbv, PUcbvConfig, PUcbvFeedback};
use fedlps::device::{CapabilityTier, DeviceProfile};
use fedlps::tensor::rng_from_seed;

/// A toy client environment: training accuracy follows a saturating curve in
/// the sparse ratio, and local cost is the Eq. (14) cost of a submodel whose
/// FLOPs scale linearly with the ratio.
struct ToyClient {
    device: DeviceProfile,
    accuracy: f64,
}

impl ToyClient {
    fn step(&mut self, ratio: f64) -> (f64, f64) {
        // Diminishing returns: beyond ~0.5 the extra units barely help.
        let gain = 0.03 * (1.0 - (-4.0 * ratio).exp());
        self.accuracy = (self.accuracy + gain).min(0.95);
        let flops = 2.0e11 * ratio;
        let bytes = 2.0e6 * ratio;
        let cost =
            flops / self.device.compute_flops_per_sec + bytes / self.device.bandwidth_bytes_per_sec;
        (self.accuracy, cost)
    }
}

fn main() {
    let rounds = 60;
    println!("P-UCBV ratio trajectories for three capability tiers ({rounds} rounds)\n");
    for tier in [
        CapabilityTier::Full,
        CapabilityTier::Quarter,
        CapabilityTier::Sixteenth,
    ] {
        let device = DeviceProfile::from_tier(tier);
        let mut client = ToyClient {
            device,
            accuracy: 0.1,
        };
        let mut agent = PUcbv::new(
            PUcbvConfig {
                total_rounds: rounds,
                ..PUcbvConfig::default()
            },
            device.max_sparse_ratio(),
            client.accuracy,
        );
        let mut rng = rng_from_seed(11);
        let mut ratio = agent.initial_ratio(&mut rng);
        let mut trajectory = Vec::new();
        for _ in 0..rounds {
            let (accuracy, cost) = client.step(ratio);
            trajectory.push(ratio);
            ratio = agent.update(
                PUcbvFeedback {
                    ratio,
                    local_cost: cost,
                    accuracy,
                },
                &mut rng,
            );
        }
        let early: f64 = trajectory[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = trajectory[rounds - 10..].iter().sum::<f64>() / 10.0;
        println!(
            "tier z={:<7} cap={:<7.4} first-10 mean ratio {:.3} -> last-10 mean ratio {:.3} \
             (final accuracy {:.2}%)",
            format!("{:?}", tier),
            device.capability,
            early,
            late,
            client.accuracy * 100.0
        );
        // A compact sparkline of the trajectory.
        let spark: String = trajectory
            .iter()
            .map(|r| {
                let bucket = ((r / device.max_sparse_ratio()) * 7.0).round() as usize;
                ['.', ':', '-', '=', '+', '*', '#', '@'][bucket.min(7)]
            })
            .collect();
        println!("  {spark}\n");
    }
    println!(
        "Weak devices are confined to small ratios by their capability cap; strong \
         devices start exploring large ratios but drift towards the cheapest ratio \
         that still improves accuracy, exactly the behaviour FedLPS relies on."
    );
}
