//! Hierarchical edge aggregation: the same federation uploading flat versus
//! through a two-tier zone-aggregator topology.
//!
//! Under `Topology::TwoTier`, every client is deterministically assigned to
//! a zone aggregator. In a synchronous round each zone buffers its clients'
//! sparse uploads and forwards **one combined dense residual** to the
//! server, priced by the zone's (faster) uplink in the Eq. (14) cost model —
//! so the server-side ingress shrinks from `clients × sparse-upload` to
//! `zones × dense-model`. An optional per-zone deadline cuts intra-zone
//! stragglers loose *at the zone*, visible as `zone_straggler_drops` in the
//! round metrics.
//!
//! The learning trace itself is untouched: the topology overlays timing,
//! traffic and drops only, and absorption stays the canonical ascending
//! walk (CI diffs two-tier traces across parallelism levels to prove it).
//!
//! ```text
//! cargo run --release --example hierarchical_fleet
//! ```

use fedlps::core::FedLps;
use fedlps::prelude::*;

fn run_once(topology: Topology) -> RunResult {
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(64);
    let fl_config = FlConfig {
        rounds: 12,
        clients_per_round: 32,
        local_iterations: 4,
        batch_size: 16,
        eval_every: 2,
        ..FlConfig::default()
    }
    .with_topology(topology);
    let env = FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, fl_config);
    let sim = Simulator::new(env);
    let mut algo = FedLps::for_env(sim.env());
    sim.run(&mut algo)
}

fn main() {
    // Probe the flat baseline first: its worst round (the slowest selected
    // client) sizes the per-zone deadline for the third run.
    let flat = run_once(Topology::Flat);
    let worst_round = flat.rounds.iter().map(|r| r.round_time).fold(0.0, f64::max);
    let zone_deadline = worst_round * 0.6;

    // Two-tier, patient: every upload waits out its zone, the server only
    // ever sees one combined forward per zone.
    let tiered = run_once(Topology::two_tier().with_zones(4).with_zone_uplink(4.0));
    // Two-tier, impatient: zones cut their own stragglers loose.
    let strict = run_once(
        Topology::two_tier()
            .with_zones(4)
            .with_zone_uplink(4.0)
            .with_zone_deadline(zone_deadline),
    );

    println!("FedLPS on a 64-client high-heterogeneity fleet, 32 clients/round");
    println!(
        "zone deadline for the strict run: {:.4}s (60% of the worst flat round)\n",
        zone_deadline
    );
    println!(
        "{:<16} {:>9} {:>12} {:>16} {:>16} {:>11}",
        "topology", "acc (%)", "time (s)", "client->zone MB", "zone->server MB", "zone drops"
    );
    for (name, result) in [
        ("flat", &flat),
        ("two-tier", &tiered),
        ("two-tier+ddl", &strict),
    ] {
        println!(
            "{:<16} {:>9.2} {:>12.3} {:>16.3} {:>16.3} {:>11}",
            name,
            result.final_accuracy * 100.0,
            result.total_time,
            result.total_upload_bytes / 1e6,
            result.total_zone_upload_bytes() / 1e6,
            result.total_zone_straggler_drops(),
        );
    }

    let saving = flat.total_upload_bytes / tiered.total_zone_upload_bytes().max(1.0);
    println!(
        "\nserver ingress saving from zone pre-merging: {saving:.1}x \
         (32 sparse client uploads collapse into 4 dense zone forwards)"
    );
    println!(
        "accuracy is identical for flat and patient two-tier ({:.2}% vs {:.2}%): \
         the zone tier re-routes bytes and re-times rounds, never the math.",
        flat.final_accuracy * 100.0,
        tiered.final_accuracy * 100.0
    );
    println!(
        "the strict run dropped {} uploads at zone deadlines — stragglers now \
         cost their zone, not the whole round.",
        strict.total_zone_straggler_drops()
    );
}
