//! Client-selection policies on a heterogeneous fleet: uniform vs Oort-style
//! utility selection vs power-of-choice.
//!
//! ```text
//! cargo run --release --example utility_selection
//! ```
//!
//! The run trains FedLPS on the same 32-client High-heterogeneity federation
//! under each [`SelectionKind`] and prints what the policy changed: final
//! accuracy, total virtual time, time-to-accuracy against a shared target and
//! — the selection layer's signature — how round participation distributes
//! over the five device capability tiers. Uniform selection spreads
//! dispatches evenly; utility selection shifts share toward the fast tiers
//! (its Eq. (14) speed term shortens the round critical path) while its
//! exploration fraction keeps the slow tiers sampled; power-of-choice sits in
//! between, chasing training loss alone.
//!
//! All three policies run through the same event-driven driver and are
//! bit-identical across `FEDLPS_PARALLELISM` settings (the `FEDLPS_SELECTION`
//! knob exposes the same policies on `examples/quickstart.rs`, where CI's
//! determinism gate diffs them).

use fedlps::device::CapabilityTier;
use fedlps::prelude::*;

fn run_policy(selection: SelectionKind) -> (RunResult, Vec<f64>) {
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(32);
    let fl_config = FlConfig {
        rounds: 12,
        clients_per_round: 6,
        local_iterations: 4,
        batch_size: 16,
        eval_every: 3,
        selection,
        ..FlConfig::default()
    };
    let env = FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, fl_config);
    let capabilities = env.capabilities();
    let sim = Simulator::new(env);
    let mut fedlps = fedlps::core::FedLps::for_env(sim.env());
    let result = sim.run(&mut fedlps);
    (result, capabilities)
}

/// Sums the participation share of each capability tier.
fn tier_shares(result: &RunResult, capabilities: &[f64]) -> Vec<(CapabilityTier, f64)> {
    let shares = result.participation_shares();
    CapabilityTier::all()
        .into_iter()
        .map(|tier| {
            let share = shares
                .iter()
                .zip(capabilities)
                .filter(|(_, &z)| CapabilityTier::from_fraction(z) == tier)
                .map(|(s, _)| s)
                .sum::<f64>();
            (tier, share)
        })
        .collect()
}

fn main() {
    let policies = [
        SelectionKind::Uniform,
        SelectionKind::utility(),
        SelectionKind::power_of_choice(),
    ];
    let runs: Vec<(SelectionKind, RunResult, Vec<f64>)> = policies
        .into_iter()
        .map(|kind| {
            let (result, capabilities) = run_policy(kind);
            (kind, result, capabilities)
        })
        .collect();

    // A target every policy reaches: 95% of the weakest best accuracy.
    let target = 0.95
        * runs
            .iter()
            .map(|(_, r, _)| r.best_accuracy)
            .fold(f64::INFINITY, f64::min);

    println!("selection policies on a 32-client High-heterogeneity fleet\n");
    for (kind, result, capabilities) in &runs {
        println!("== {} ==", kind.name());
        println!(
            "final accuracy {:.2}% | total virtual time {:.3}s | time to {:.1}% accuracy: {}",
            result.final_accuracy * 100.0,
            result.total_time,
            target * 100.0,
            result
                .time_to_accuracy(target)
                .map_or("never".into(), |t| format!("{t:.3}s")),
        );
        println!(
            "mean selection utility {:.3} | distinct participants {} of {}",
            result.mean_selection_utility(),
            result.total_first_time_participants(),
            capabilities.len()
        );
        println!("participation share by device tier:");
        for (tier, share) in tier_shares(result, capabilities) {
            let bar = "#".repeat((share * 50.0).round() as usize);
            println!(
                "  z = {:>6.4}: {:>5.1}%  {}",
                tier.fraction(),
                share * 100.0,
                bar
            );
        }
        println!();
    }

    let share_of = |kind_name: &str, tier: CapabilityTier| {
        runs.iter()
            .find(|(k, _, _)| k.name() == kind_name)
            .map(|(_, r, c)| {
                tier_shares(r, c)
                    .into_iter()
                    .find(|(t, _)| *t == tier)
                    .map_or(0.0, |(_, s)| s)
            })
            .unwrap_or(0.0)
    };
    println!(
        "full-tier share: uniform {:.1}% -> utility {:.1}% (the Eq. 14 speed term at work)",
        share_of("uniform", CapabilityTier::Full) * 100.0,
        share_of("utility", CapabilityTier::Full) * 100.0,
    );
}
