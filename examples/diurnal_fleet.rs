//! Correlated availability: the same federation under i.i.d. churn and
//! under a diurnal (day/night) availability wave, with transient upload
//! faults and quorum-based graceful degradation.
//!
//! An i.i.d. coin flip per dispatch is the classic simulator simplification;
//! real fleets go offline in *correlated* waves — devices share time zones,
//! charging habits and network outages. Under a wave, a synchronous barrier
//! keeps dispatching into the night and waits entire outages out. This
//! example shows the two mitigation knobs the fault subsystem adds:
//!
//! * **deadline rounds** cut clients that dispatch into an outage;
//! * **a quorum** (`FlConfig::quorum`) closes the barrier once a fraction of
//!   the cohort has reported, bounding the tail without dropping rounds.
//!
//! On top of the availability axis, every upload here has a transient
//! failure probability with retry + exponential backoff, so the drop
//! histogram separates churn, deadline stragglers and exhausted retries.
//!
//! ```text
//! cargo run --release --example diurnal_fleet
//! ```

use fedlps::core::FedLps;
use fedlps::prelude::*;

fn run_once(availability: AvailabilityModel, mode: RoundMode, quorum: f64) -> RunResult {
    let scenario = ScenarioConfig::small(DatasetKind::MnistLike).with_clients(64);
    let fl_config = FlConfig {
        rounds: 12,
        clients_per_round: 8,
        local_iterations: 4,
        batch_size: 16,
        eval_every: 2,
        ..FlConfig::default()
    }
    .with_round_mode(mode)
    .with_availability(availability)
    .with_quorum(quorum)
    .with_faults(FaultConfig {
        upload_failure_prob: 0.15,
        max_retries: 2,
        ..FaultConfig::default()
    });
    let env = FlEnv::from_scenario(&scenario, HeterogeneityLevel::High, fl_config);
    let sim = Simulator::new(env);
    let mut algo = FedLps::for_env(sim.env());
    sim.run(&mut algo)
}

fn main() {
    // Probe under always-on i.i.d. availability to size the diurnal period:
    // roughly four day/night cycles over the whole run, 40% of each spent
    // offline, phases spread across the fleet (not one shared time zone).
    let iid_sync = run_once(AvailabilityModel::Iid, RoundMode::Synchronous, 1.0);
    let diurnal = AvailabilityModel::Diurnal {
        period: iid_sync.total_time / 4.0,
        phase_spread: 1.0,
        night_offline: 0.4,
    };
    let worst_round = iid_sync
        .rounds
        .iter()
        .map(|r| r.round_time)
        .fold(0.0, f64::max);
    let deadline = RoundMode::deadline(worst_round * 0.5, 4);

    let configs = [
        (
            "iid / sync",
            AvailabilityModel::Iid,
            RoundMode::Synchronous,
            1.0,
        ),
        ("diurnal / sync", diurnal, RoundMode::Synchronous, 1.0),
        (
            "diurnal / sync+quorum",
            diurnal,
            RoundMode::Synchronous,
            0.75,
        ),
        ("diurnal / deadline", diurnal, RoundMode::Synchronous, 1.0),
    ];

    println!("FedLPS, 64 clients, transient upload faults (p=0.15, 2 retries)");
    println!(
        "diurnal wave: period {:.3}s, 40% night, phases spread over the fleet\n",
        iid_sync.total_time / 4.0
    );
    println!(
        "{:<22} {:>9} {:>11} {:>9} {:>8} {:>8} {:>8}",
        "config", "acc (%)", "time (s)", "waits (s)", "retries", "drops", "quorum"
    );
    for (name, availability, mode, quorum) in configs {
        let mode = if name.ends_with("deadline") {
            deadline
        } else {
            mode
        };
        let result = run_once(availability, mode, quorum);
        println!(
            "{:<22} {:>9.2} {:>11.3} {:>9.3} {:>8} {:>8} {:>8}",
            name,
            result.final_accuracy * 100.0,
            result.total_time,
            result.total_unavailable_wait_seconds(),
            result.total_retry_attempts(),
            result.total_straggler_drops() + result.total_upload_failure_drops(),
            result.total_quorum_closes(),
        );
        if name == "diurnal / deadline" {
            println!("\n  drop histogram of the deadline run:");
            for (cause, count) in result.drop_causes() {
                if count > 0 {
                    println!("    {cause:<20} {count}");
                }
            }
        }
    }

    println!(
        "\nExpected shape: the diurnal synchronous run pays for every outage \
         it dispatches into (the waits column), while the quorum and deadline \
         variants close rounds without the night-bound tail — far less \
         virtual time at comparable accuracy. Every run, i.i.d. or diurnal, \
         is bit-identical across parallelism, backend and topology settings."
    );
}
